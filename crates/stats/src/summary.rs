//! Descriptive summaries: mean/stddev and box-plot five-number summaries.

use crate::StatsError;
use serde::{Deserialize, Serialize};

/// Mean, standard deviation, and extremes of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub stddev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `sample`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] or [`StatsError::NanSample`].
    pub fn of(sample: &[f64]) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if sample.iter().any(|x| x.is_nan()) {
            return Err(StatsError::NanSample);
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary { n, mean, stddev: var.sqrt(), min, max })
    }
}

/// The five-number summary behind a box plot (Fig. 8 of the paper), with
/// Tukey-style whiskers at 1.5 × IQR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Sample size.
    pub n: usize,
    /// Minimum observed value (including outliers).
    pub min: f64,
    /// Lower whisker: smallest value ≥ `q1 − 1.5·IQR`.
    pub whisker_low: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker: largest value ≤ `q3 + 1.5·IQR`.
    pub whisker_high: f64,
    /// Maximum observed value (including outliers).
    pub max: f64,
}

impl BoxPlot {
    /// Computes the box-plot summary of `sample`.
    ///
    /// Quartiles use linear interpolation between order statistics (type-7,
    /// the numpy/R default).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] or [`StatsError::NanSample`].
    pub fn of(sample: &[f64]) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if sample.iter().any(|x| x.is_nan()) {
            return Err(StatsError::NanSample);
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers reach the most extreme data inside the fences but never
        // retreat inside the box: with few points and a strong outlier the
        // interpolated quartile can exceed every in-fence datum, and the
        // whisker then clamps to the box edge (the matplotlib convention).
        let whisker_low =
            sorted.iter().cloned().find(|&x| x >= lo_fence).unwrap_or(sorted[0]).min(q1);
        let whisker_high = sorted
            .iter()
            .cloned()
            .rev()
            .find(|&x| x <= hi_fence)
            .unwrap_or(*sorted.last().expect("non-empty"))
            .max(q3);
        Ok(BoxPlot {
            n: sorted.len(),
            min: sorted[0],
            whisker_low,
            q1,
            median,
            q3,
            whisker_high,
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Quantile `q ∈ [0, 1]` of pre-sorted data, with linear interpolation.
///
/// # Panics
///
/// Panics if `sorted` is empty (callers validate).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // sample stddev with n-1: var = 32/7
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_single_point() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert_eq!(Summary::of(&[]), Err(StatsError::EmptySample));
        assert_eq!(Summary::of(&[f64::NAN]), Err(StatsError::NanSample));
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 4.0);
        assert!((quantile_sorted(&sorted, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile_sorted(&sorted, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn boxplot_of_uniform_run() {
        let data: Vec<f64> = (1..=9).map(f64::from).collect();
        let b = BoxPlot::of(&data).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 9.0);
        // no outliers: whiskers reach the extremes
        assert_eq!(b.whisker_low, 1.0);
        assert_eq!(b.whisker_high, 9.0);
    }

    #[test]
    fn boxplot_excludes_outliers_from_whiskers() {
        let mut data: Vec<f64> = (1..=9).map(f64::from).collect();
        data.push(100.0); // far outlier
        let b = BoxPlot::of(&data).unwrap();
        assert_eq!(b.max, 100.0);
        assert!(b.whisker_high < 100.0);
    }

    #[test]
    fn boxplot_of_constant_data() {
        let b = BoxPlot::of(&[0.9; 10]).unwrap();
        assert_eq!(b.median, 0.9);
        assert_eq!(b.q1, 0.9);
        assert_eq!(b.q3, 0.9);
        assert_eq!(b.whisker_low, 0.9);
        assert_eq!(b.whisker_high, 0.9);
    }
}
