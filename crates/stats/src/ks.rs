//! Two-sample Kolmogorov–Smirnov test.
//!
//! The paper's detection policy (§VI) compares a link's PRR distribution in
//! channel-reuse slots against its distribution in contention-free slots.
//! The K-S test is chosen there precisely because it is distribution-free
//! and places no restriction on sample size.
//!
//! The statistic is `D = sup_x |F_1(x) − F_2(x)|`; the p-value uses the
//! standard asymptotic Kolmogorov distribution with the small-sample
//! correction of Numerical Recipes:
//! `p = Q_KS((√n_e + 0.12 + 0.11/√n_e) · D)` with
//! `n_e = n₁·n₂/(n₁+n₂)` and `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`.

use crate::{Ecdf, StatsError};
use serde::{Deserialize, Serialize};

/// Decision of the hypothesis test at a significance level α.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KsOutcome {
    /// `p < α`: the two samples come from significantly different
    /// distributions (in the paper: channel reuse degrades the link).
    Reject,
    /// `p ≥ α`: no significant difference (degradation, if any, has another
    /// cause).
    Accept,
}

/// Result of a two-sample K-S test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    statistic: f64,
    p_value: f64,
    n1: usize,
    n2: usize,
}

impl KsResult {
    /// The K-S statistic `D = sup |F₁ − F₂|`, in `[0, 1]`.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// The asymptotic p-value in `(0, 1]`.
    pub fn p_value(&self) -> f64 {
        self.p_value
    }

    /// Sizes of the two samples.
    pub fn sample_sizes(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// The null-hypothesis decision at significance level `alpha`
    /// (the paper uses α = 0.05).
    pub fn outcome(&self, alpha: f64) -> KsOutcome {
        if self.p_value < alpha {
            KsOutcome::Reject
        } else {
            KsOutcome::Accept
        }
    }
}

/// Runs the two-sample K-S test on `a` and `b`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] if either sample is empty, or
/// [`StatsError::NanSample`] if either contains NaN.
pub fn two_sample(a: &[f64], b: &[f64]) -> Result<KsResult, StatsError> {
    let fa = Ecdf::new(a)?;
    let fb = Ecdf::new(b)?;
    // D is attained at a jump point of either ECDF: either at the jump
    // itself or just below it. The left limit is evaluated exactly with
    // `Ecdf::eval_left` — the former `eval(x - ε)` probe could straddle a
    // neighbouring support point when PRR samples sit closer together than
    // the epsilon (adjacent floats included).
    let mut d: f64 = 0.0;
    for &x in fa.support().iter().chain(fb.support()) {
        let diff = (fa.eval(x) - fb.eval(x)).abs();
        if diff > d {
            d = diff;
        }
        let diff_left = (fa.eval_left(x) - fb.eval_left(x)).abs();
        if diff_left > d {
            d = diff_left;
        }
    }
    let n1 = fa.len() as f64;
    let n2 = fb.len() as f64;
    let ne = n1 * n2 / (n1 + n2);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    let p = q_ks(lambda);
    Ok(KsResult { statistic: d, p_value: p, n1: fa.len(), n2: fb.len() })
}

/// The Kolmogorov survival function
/// `Q_KS(λ) = 2 Σ_{j=1..∞} (−1)^{j−1} exp(−2 j² λ²)`, clamped to `[0, 1]`.
fn q_ks(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    let l2 = lambda * lambda;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * l2).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_accept() {
        let a = [0.9, 0.95, 0.92, 0.97, 0.91, 0.94];
        let r = two_sample(&a, &a).unwrap();
        assert_eq!(r.statistic(), 0.0);
        assert_eq!(r.p_value(), 1.0);
        assert_eq!(r.outcome(0.05), KsOutcome::Accept);
    }

    #[test]
    fn disjoint_samples_reject() {
        let a: Vec<f64> = (0..18).map(|i| 0.9 + 0.005 * i as f64).collect();
        let b: Vec<f64> = (0..18).map(|i| 0.3 + 0.005 * i as f64).collect();
        let r = two_sample(&a, &b).unwrap();
        assert_eq!(r.statistic(), 1.0);
        assert!(r.p_value() < 1e-6);
        assert_eq!(r.outcome(0.05), KsOutcome::Reject);
    }

    #[test]
    fn statistic_matches_hand_computation() {
        // a = {1,2,3}, b = {2,3,4}: D = 1/3 at x in [1,2) and elsewhere.
        let r = two_sample(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]).unwrap();
        assert!((r.statistic() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn statistic_with_interleaved_ties() {
        // a = {1,1,2}, b = {1,2,2}: F_a(1)=2/3, F_b(1)=1/3 → D = 1/3.
        let r = two_sample(&[1.0, 1.0, 2.0], &[1.0, 2.0, 2.0]).unwrap();
        assert!((r.statistic() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn small_shifts_on_small_samples_accept() {
        // 6 points shifted slightly: underpowered, should accept.
        let a = [0.90, 0.91, 0.92, 0.93, 0.94, 0.95];
        let b = [0.905, 0.915, 0.925, 0.935, 0.945, 0.955];
        let r = two_sample(&a, &b).unwrap();
        assert_eq!(r.outcome(0.05), KsOutcome::Accept);
    }

    #[test]
    fn paper_scale_samples_detect_reuse_degradation() {
        // 18 samples per epoch as in §VII-E: healthy vs. clearly degraded.
        let cf: Vec<f64> = (0..18).map(|i| 0.93 + 0.004 * (i % 5) as f64).collect();
        let reuse: Vec<f64> = (0..18).map(|i| 0.70 + 0.01 * (i % 4) as f64).collect();
        let r = two_sample(&cf, &reuse).unwrap();
        assert_eq!(r.outcome(0.05), KsOutcome::Reject);
    }

    /// Brute-force `sup |F₁ − F₂|`: evaluate both ECDFs (value and exact
    /// left limit) at every support point of either sample.
    fn brute_force_d(a: &[f64], b: &[f64]) -> f64 {
        let fa = Ecdf::new(a).unwrap();
        let fb = Ecdf::new(b).unwrap();
        let mut d: f64 = 0.0;
        for &x in fa.support().iter().chain(fb.support()) {
            d = d.max((fa.eval(x) - fb.eval(x)).abs());
            d = d.max((fa.eval_left(x) - fb.eval_left(x)).abs());
        }
        d
    }

    #[test]
    fn near_adjacent_floats_keep_an_exact_statistic() {
        // PRR samples one ULP apart — far closer than the old
        // `x·4ε` probe offset. The statistic must match the exact
        // brute-force supremum, not an epsilon-perturbed evaluation.
        let hi = 0.93_f64;
        let lo = f64::from_bits(hi.to_bits() - 1);
        let a = [lo, hi, hi];
        let b = [lo, lo, hi];
        let r = two_sample(&a, &b).unwrap();
        assert_eq!(r.statistic(), brute_force_d(&a, &b));
        assert!((r.statistic() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tightly_clustered_samples_match_brute_force() {
        // Clusters of near-identical floats at several magnitudes,
        // including values whose spacing is below x·4ε.
        for scale in [1e-12_f64, 1.0, 1e12] {
            let base = 0.7 * scale;
            let step = f64::from_bits(base.to_bits() + 1) - base;
            let a: Vec<f64> = (0..10).map(|i| base + step * f64::from(i % 3)).collect();
            let b: Vec<f64> = (0..10).map(|i| base + step * f64::from(i % 4)).collect();
            let r = two_sample(&a, &b).unwrap();
            assert_eq!(r.statistic(), brute_force_d(&a, &b), "scale {scale}");
        }
    }

    #[test]
    fn empty_sample_errors() {
        assert_eq!(two_sample(&[], &[1.0]), Err(StatsError::EmptySample));
        assert_eq!(two_sample(&[1.0], &[]), Err(StatsError::EmptySample));
    }

    #[test]
    fn q_ks_limits() {
        assert_eq!(q_ks(0.0), 1.0);
        assert!(q_ks(0.2) > 0.999);
        assert!(q_ks(3.0) < 1e-6);
        // monotone decreasing
        let mut last = 1.0;
        for i in 1..40 {
            let v = q_ks(i as f64 * 0.1);
            assert!(v <= last + 1e-15);
            last = v;
        }
    }

    #[test]
    fn q_ks_known_value() {
        // Q_KS(1.0) ≈ 0.26999967... (classic tabulated value 0.27)
        assert!((q_ks(1.0) - 0.27).abs() < 0.001);
    }

    #[test]
    fn asymmetric_sample_sizes_work() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64) / 50.0).collect();
        let b: Vec<f64> = (0..8).map(|i| 0.5 + (i as f64) / 16.0).collect();
        let r = two_sample(&a, &b).unwrap();
        assert_eq!(r.sample_sizes(), (50, 8));
        assert!(r.statistic() > 0.4);
    }
}
