//! Property-based invariants of the graph substrate on random synthetic
//! topologies.

use proptest::prelude::*;
use wsan_net::{testbeds, ChannelId, NodeId, Prr};

fn arb_config() -> impl Strategy<Value = (u64, u8, u8)> {
    // seed, first channel, channel count (1..=5)
    (0u64..64, 11u8..=20, 1u8..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reuse graph always contains the communication graph: an edge
    /// reliable enough for routing certainly has nonzero PRR.
    #[test]
    fn comm_graph_is_subgraph_of_reuse_graph((seed, first, m) in arb_config()) {
        let topo = testbeds::wustl(seed);
        let channels = ChannelId::range(first, first + m - 1).unwrap();
        let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
        let reuse = topo.reuse_graph(&channels);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a < b && comm.has_edge(a, b) {
                    prop_assert!(reuse.has_edge(a, b), "comm edge {a}-{b} missing from reuse graph");
                }
            }
        }
        prop_assert!(reuse.edge_count() >= comm.edge_count());
    }

    /// Hop distances are symmetric and satisfy the triangle inequality.
    #[test]
    fn hop_matrix_is_a_metric(seed in 0u64..32) {
        let topo = testbeds::wustl(seed);
        let channels = ChannelId::range(11, 14).unwrap();
        let g = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
        let hm = g.hop_matrix();
        let n = topo.node_count();
        // spot-check a deterministic subset of triples (full n³ is slow)
        for a in (0..n).step_by(7) {
            for b in (0..n).step_by(11) {
                let (na, nb) = (NodeId::new(a), NodeId::new(b));
                prop_assert_eq!(hm.hops(na, nb), hm.hops(nb, na));
                if a == b {
                    prop_assert_eq!(hm.hops(na, nb), 0);
                }
                for c in (0..n).step_by(13) {
                    let nc = NodeId::new(c);
                    let (ab, bc, ac) = (hm.hops(na, nb), hm.hops(nb, nc), hm.hops(na, nc));
                    if ab != u32::MAX && bc != u32::MAX {
                        prop_assert!(ac <= ab + bc, "triangle violated: {a}-{b}-{c}");
                    }
                }
            }
        }
    }

    /// A narrower channel set never removes communication edges: requiring
    /// reliability on fewer channels is a weaker constraint.
    #[test]
    fn fewer_channels_keep_comm_edges(seed in 0u64..32) {
        let topo = testbeds::wustl(seed);
        let wide = ChannelId::range(11, 16).unwrap();
        let narrow = ChannelId::range(11, 12).unwrap();
        let prr_t = Prr::new(0.9).unwrap();
        let g_wide = topo.comm_graph(&wide, prr_t);
        let g_narrow = topo.comm_graph(&narrow, prr_t);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a < b && g_wide.has_edge(a, b) {
                    prop_assert!(g_narrow.has_edge(a, b));
                }
            }
        }
    }

    /// Access points are always distinct, valid nodes.
    #[test]
    fn access_points_are_distinct((seed, k) in (0u64..32, 2usize..5)) {
        let topo = testbeds::wustl(seed);
        let channels = ChannelId::range(11, 14).unwrap();
        let g = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
        let aps = g.select_access_points(k);
        prop_assert_eq!(aps.len(), k);
        let distinct: std::collections::BTreeSet<_> = aps.iter().collect();
        prop_assert_eq!(distinct.len(), k);
        for ap in aps {
            prop_assert!(ap.index() < topo.node_count());
        }
    }
}
