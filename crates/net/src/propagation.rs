//! Indoor radio propagation: log-distance path loss, floor penetration,
//! per-(link, channel) shadowing, and the RSSI → PRR response curve.
//!
//! The paper evaluates on PRR tables *measured* on two physical testbeds.
//! We do not have those traces, so the [`testbeds`](crate::testbeds) module
//! synthesizes statistically similar tables from this model:
//!
//! ```text
//! RSSI(u→v, ch) = P_tx − PL(d0) − 10·n·log10(d/d0)
//!                 − floors(u,v)·L_floor + X(uv, ch)
//! ```
//!
//! where `X(uv, ch)` is frozen log-normal shadowing drawn once per
//! (unordered pair, channel) plus a small per-direction asymmetry term. The
//! channel dependence of `X` reproduces the well-documented per-channel PRR
//! diversity of 802.15.4 links: a link may be perfect on channel 15 and dead
//! on channel 22. PRR follows a logistic curve of RSSI across the receiver
//! sensitivity region, with a hard floor below which the PRR is exactly zero
//! (no connectivity ⇒ no edge in the channel reuse graph).

use crate::Prr;
use serde::{Deserialize, Serialize};

/// Parameters of the indoor propagation and receiver model.
///
/// Defaults approximate a TelosB-class (CC2420) deployment at 0 dBm transmit
/// power in an office building, matching the paper's testbed settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationModel {
    /// Transmit power in dBm (paper: 0 dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance `d0 = 1 m`, in dB.
    pub ref_loss_db: f64,
    /// Path-loss exponent `n` (≈3 for cluttered indoor environments).
    pub path_loss_exponent: f64,
    /// Penetration loss per concrete floor, in dB.
    pub floor_loss_db: f64,
    /// Height of one floor in meters (converts Δz to floor count).
    pub floor_height_m: f64,
    /// Standard deviation of the frozen *pair-level* shadowing, dB. This
    /// component is common to every channel of a pair: walls and furniture
    /// attenuate the whole 2.4 GHz band together, so a pair that is
    /// surprisingly strong (or weak) is so on all 16 channels at once.
    pub pair_shadowing_sigma_db: f64,
    /// Standard deviation of the frozen *per-channel* (frequency-selective)
    /// shadowing component, dB. This is what makes a link great on channel
    /// 15 and dead on channel 22.
    pub channel_shadowing_sigma_db: f64,
    /// Standard deviation of the per-direction asymmetry term, dB.
    pub asymmetry_sigma_db: f64,
    /// RSSI at which PRR crosses 0.5, in dBm (receiver sensitivity knee).
    pub prr_midpoint_dbm: f64,
    /// Slope of the logistic PRR curve, dB per e-fold.
    pub prr_slope_db: f64,
    /// PRR below this value is truncated to exactly zero, so that distant
    /// pairs genuinely have no edge in the channel reuse graph.
    pub prr_floor: f64,
}

impl Default for PropagationModel {
    fn default() -> Self {
        PropagationModel {
            tx_power_dbm: 0.0,
            ref_loss_db: 40.0,
            path_loss_exponent: 3.4,
            floor_loss_db: 16.0,
            floor_height_m: 3.5,
            pair_shadowing_sigma_db: 3.0,
            channel_shadowing_sigma_db: 2.0,
            asymmetry_sigma_db: 0.8,
            prr_midpoint_dbm: -89.0,
            prr_slope_db: 1.0,
            prr_floor: 0.05,
        }
    }
}

impl PropagationModel {
    /// Deterministic mean RSSI (dBm) over a 3-D distance with floor
    /// penetration, before shadowing.
    pub fn mean_rssi_dbm(&self, distance_m: f64, floors: u32) -> f64 {
        // Below the reference distance the near-field formula is meaningless;
        // clamp so co-located nodes simply see a very strong signal.
        let d = distance_m.max(0.5);
        self.tx_power_dbm
            - self.ref_loss_db
            - 10.0 * self.path_loss_exponent * (d.log10())
            - f64::from(floors) * self.floor_loss_db
    }

    /// The logistic RSSI → PRR response with a hard zero floor.
    pub fn prr_from_rssi(&self, rssi_dbm: f64) -> Prr {
        let x = (rssi_dbm - self.prr_midpoint_dbm) / self.prr_slope_db;
        let p = 1.0 / (1.0 + (-x).exp());
        if p < self.prr_floor {
            Prr::ZERO
        } else {
            Prr::saturating(p)
        }
    }

    /// Received power in dBm of a signal travelling `distance_m` meters
    /// across `floors` floors with frozen shadowing `shadow_db`.
    pub fn received_power_dbm(&self, distance_m: f64, floors: u32, shadow_db: f64) -> f64 {
        self.mean_rssi_dbm(distance_m, floors) + shadow_db
    }
}

/// Converts a power in dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts a power in milliwatts to dBm.
///
/// # Panics
///
/// Panics in debug builds if `mw` is non-positive.
pub fn mw_to_dbm(mw: f64) -> f64 {
    debug_assert!(mw > 0.0, "power must be positive to express in dBm");
    10.0 * mw.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rssi_decreases_with_distance() {
        let m = PropagationModel::default();
        let near = m.mean_rssi_dbm(5.0, 0);
        let mid = m.mean_rssi_dbm(20.0, 0);
        let far = m.mean_rssi_dbm(60.0, 0);
        assert!(near > mid && mid > far);
    }

    #[test]
    fn floor_penalty_applies_per_floor() {
        let m = PropagationModel::default();
        let same = m.mean_rssi_dbm(10.0, 0);
        let one = m.mean_rssi_dbm(10.0, 1);
        let two = m.mean_rssi_dbm(10.0, 2);
        assert!((same - one - m.floor_loss_db).abs() < 1e-9);
        assert!((one - two - m.floor_loss_db).abs() < 1e-9);
    }

    #[test]
    fn prr_curve_is_monotone_and_saturates() {
        let m = PropagationModel::default();
        assert_eq!(m.prr_from_rssi(-120.0), Prr::ZERO);
        let strong = m.prr_from_rssi(-50.0);
        assert!(strong.value() > 0.999);
        let knee = m.prr_from_rssi(m.prr_midpoint_dbm);
        assert!((knee.value() - 0.5).abs() < 1e-9);
        // monotone over a sweep
        let mut last = 0.0;
        for rssi in -110..-40 {
            let p = m.prr_from_rssi(f64::from(rssi)).value();
            assert!(p >= last, "PRR must be monotone in RSSI");
            last = p;
        }
    }

    #[test]
    fn prr_floor_truncates_to_exact_zero() {
        let m = PropagationModel::default();
        // Just below the floor: logistic would give ~0.047 < 0.05 floor.
        let rssi = m.prr_midpoint_dbm - 3.0 * m.prr_slope_db;
        assert_eq!(m.prr_from_rssi(rssi), Prr::ZERO);
    }

    #[test]
    fn close_range_is_clamped() {
        let m = PropagationModel::default();
        // Distances below 0.5 m all see the same (strong) signal.
        assert_eq!(m.mean_rssi_dbm(0.0, 0), m.mean_rssi_dbm(0.3, 0));
    }

    #[test]
    fn dbm_mw_round_trip() {
        for dbm in [-90.0, -50.0, 0.0, 10.0] {
            let mw = dbm_to_mw(dbm);
            assert!((mw_to_dbm(mw) - dbm).abs() < 1e-9);
        }
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn typical_indoor_ranges_are_sensible() {
        // Same-floor: reliable to ~20 m, dead past ~60 m. These anchors keep
        // the synthetic testbeds multi-hop like the physical ones.
        let m = PropagationModel::default();
        assert!(m.prr_from_rssi(m.mean_rssi_dbm(15.0, 0)).value() > 0.95);
        assert_eq!(m.prr_from_rssi(m.mean_rssi_dbm(80.0, 0)), Prr::ZERO);
    }
}
