//! Node identity, role, and physical placement.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a field device within one [`Topology`](crate::Topology).
///
/// Node ids are dense indices `0..node_count` assigned by the topology; they
/// are *not* globally unique addresses. Keeping them dense lets graphs and
/// schedules use flat vectors instead of hash maps on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u16` (topologies are capped at
    /// 65 536 nodes, far above any WirelessHART deployment).
    pub fn new(index: usize) -> Self {
        NodeId(u16::try_from(index).expect("node index exceeds u16::MAX"))
    }

    /// The dense index of this node, usable to index per-node vectors.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Role of a device in the WirelessHART architecture.
///
/// Access points are wired to the gateway; in the paper every generated flow
/// set designates the two best-connected nodes as access points, and
/// centralized traffic is forced through them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NodeRole {
    /// An ordinary field device (sensor or actuator).
    #[default]
    FieldDevice,
    /// An access point wired to the gateway.
    AccessPoint,
}

/// Physical placement of a node, in meters.
///
/// `z` encodes elevation; multi-floor testbeds place floors at fixed `z`
/// offsets so the propagation model can charge a per-floor penetration loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
    /// Elevation in meters.
    pub z: f64,
}

impl Position {
    /// Creates a position from coordinates in meters.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Position { x, y, z }
    }

    /// Euclidean distance to `other` in meters.
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// The floor this position sits on, bucketing by floor *base*: floor
    /// `k` spans `[k·floor_height, (k+1)·floor_height)`.
    ///
    /// Generators place nodes relative to floor bases, so metrics must
    /// bucket the same way. `div_euclid`-style flooring keeps positions
    /// below ground (negative `z`) on well-defined negative floors.
    pub fn floor_index(&self, floor_height: f64) -> i64 {
        (self.z / floor_height).floor() as i64
    }

    /// Number of floor slabs separating this position from `other`,
    /// assuming `floor_height` meters per floor.
    ///
    /// Used by the propagation model to charge floor-penetration loss.
    /// Both positions are bucketed to their floor base via
    /// [`Position::floor_index`]; the previous `round()` formulation put a
    /// node exactly halfway between floors on the *upper* floor
    /// (round-half-away), disagreeing with how generators place nodes.
    pub fn floors_between(&self, other: &Position, floor_height: f64) -> u32 {
        self.floor_index(floor_height).abs_diff(other.floor_index(floor_height)) as u32
    }
}

impl Default for Position {
    fn default() -> Self {
        Position::new(0.0, 0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    #[should_panic(expected = "node index exceeds")]
    fn node_id_rejects_oversized_index() {
        let _ = NodeId::new(70_000);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 0.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(1.0, 2.0, 3.0);
        let b = Position::new(-4.0, 0.5, 9.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn floors_between_counts_whole_floors() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(0.0, 0.0, 8.0);
        assert_eq!(a.floors_between(&b, 4.0), 2);
        assert_eq!(a.floors_between(&a, 4.0), 0);
    }

    #[test]
    fn floors_between_buckets_by_floor_base_not_round_half_away() {
        // z = 6.0 with 4 m floors is halfway between floor bases 4.0 and
        // 8.0, but it physically sits *on* floor 1 ([4, 8)). round() used
        // to bucket it upward to two slabs away from the ground floor.
        let ground = Position::new(0.0, 0.0, 0.0);
        let halfway = Position::new(0.0, 0.0, 6.0);
        assert_eq!(ground.floors_between(&halfway, 4.0), 1);
        // the method stays symmetric
        assert_eq!(halfway.floors_between(&ground, 4.0), 1);
        // just below the next base is still the same floor …
        let below = Position::new(0.0, 0.0, 7.999);
        assert_eq!(ground.floors_between(&below, 4.0), 1);
        // … and exactly on the base belongs to the upper floor
        let on_base = Position::new(0.0, 0.0, 8.0);
        assert_eq!(ground.floors_between(&on_base, 4.0), 2);
    }

    #[test]
    fn floor_index_handles_negative_elevation() {
        let basement = Position::new(0.0, 0.0, -0.5);
        assert_eq!(basement.floor_index(4.0), -1);
        let ground = Position::new(0.0, 0.0, 0.0);
        assert_eq!(ground.floors_between(&basement, 4.0), 1);
    }

    #[test]
    fn default_role_is_field_device() {
        assert_eq!(NodeRole::default(), NodeRole::FieldDevice);
    }
}
