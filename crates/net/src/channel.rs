//! IEEE 802.15.4 channels and the TSCH channel-hopping map.

use crate::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// First channel of the IEEE 802.15.4 2.4 GHz band.
pub const FIRST_CHANNEL: u8 = 11;
/// Last channel of the IEEE 802.15.4 2.4 GHz band.
pub const LAST_CHANNEL: u8 = 26;
/// Number of channels in the 2.4 GHz band (TSCH can use up to 16).
pub const BAND_SIZE: usize = (LAST_CHANNEL - FIRST_CHANNEL + 1) as usize;

/// An IEEE 802.15.4 2.4 GHz channel number (11..=26).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(u8);

impl ChannelId {
    /// Creates a channel id, validating it lies within the 2.4 GHz band.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidChannel`] if `number` is outside `11..=26`.
    pub fn new(number: u8) -> Result<Self, NetError> {
        if (FIRST_CHANNEL..=LAST_CHANNEL).contains(&number) {
            Ok(ChannelId(number))
        } else {
            Err(NetError::InvalidChannel(number))
        }
    }

    /// The raw IEEE channel number (11..=26).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Dense index of this channel within the band: channel 11 maps to 0.
    pub fn band_index(self) -> usize {
        usize::from(self.0 - FIRST_CHANNEL)
    }

    /// Center frequency of this channel in MHz (2405 + 5·(k − 11)).
    pub fn frequency_mhz(self) -> f64 {
        2405.0 + 5.0 * f64::from(self.0 - FIRST_CHANNEL)
    }

    /// An inclusive, ordered channel range, e.g. `ChannelId::range(11, 14)`
    /// for the four channels used in the paper's reliability experiments.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidChannelRange`] if the range is empty or
    /// reaches outside the band.
    pub fn range(first: u8, last: u8) -> Result<ChannelSet, NetError> {
        if first > last || first < FIRST_CHANNEL || last > LAST_CHANNEL {
            return Err(NetError::InvalidChannelRange { first, last });
        }
        Ok(ChannelSet::new((first..=last).map(ChannelId)))
    }

    /// All 16 channels of the band, in order.
    pub fn all() -> ChannelSet {
        ChannelSet::new((FIRST_CHANNEL..=LAST_CHANNEL).map(ChannelId))
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// An ordered set of channels in use by the network.
///
/// The order matters: it is the logical-to-physical channel mapping table
/// shared by all devices. With `m` channels in the set, a transmission with
/// channel offset `c` in the slot with absolute slot number `asn` uses
/// physical channel `set[(asn + c) mod m]` — the TSCH hopping formula from
/// §III-B of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelSet {
    channels: Vec<ChannelId>,
}

impl ChannelSet {
    /// Builds a channel set from an ordered iterator of channels,
    /// removing duplicates while preserving first-seen order.
    pub fn new<I: IntoIterator<Item = ChannelId>>(channels: I) -> Self {
        let mut out = Vec::new();
        for c in channels {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        ChannelSet { channels: out }
    }

    /// Number of channels `|M|` in the set.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The channels in mapping-table order.
    pub fn iter(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.channels.iter().copied()
    }

    /// Returns the channel at mapping-table position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn at(&self, i: usize) -> ChannelId {
        self.channels[i]
    }

    /// Whether `channel` belongs to the set.
    pub fn contains(&self, channel: ChannelId) -> bool {
        self.channels.contains(&channel)
    }

    /// The physical channel used by channel offset `offset` in the slot with
    /// absolute slot number `asn`:
    /// `logicalChannel = (ASN + channelOffset) mod |M|`.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn physical(&self, asn: u64, offset: usize) -> ChannelId {
        assert!(!self.channels.is_empty(), "channel set is empty");
        let m = self.channels.len() as u64;
        let logical = (asn + offset as u64) % m;
        self.channels[logical as usize]
    }

    /// Restricts the set to its first `m` channels (the "use m channels"
    /// sweeps in the paper's evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the set size or is zero.
    pub fn take(&self, m: usize) -> ChannelSet {
        assert!(
            m >= 1 && m <= self.channels.len(),
            "cannot take {m} channels from a set of {}",
            self.channels.len()
        );
        ChannelSet { channels: self.channels[..m].to_vec() }
    }
}

impl FromIterator<ChannelId> for ChannelSet {
    fn from_iter<I: IntoIterator<Item = ChannelId>>(iter: I) -> Self {
        ChannelSet::new(iter)
    }
}

impl<'a> IntoIterator for &'a ChannelSet {
    type Item = ChannelId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ChannelId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.channels.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_validation() {
        assert!(ChannelId::new(11).is_ok());
        assert!(ChannelId::new(26).is_ok());
        assert_eq!(ChannelId::new(10), Err(NetError::InvalidChannel(10)));
        assert_eq!(ChannelId::new(27), Err(NetError::InvalidChannel(27)));
    }

    #[test]
    fn band_index_and_frequency() {
        let c11 = ChannelId::new(11).unwrap();
        let c26 = ChannelId::new(26).unwrap();
        assert_eq!(c11.band_index(), 0);
        assert_eq!(c26.band_index(), 15);
        assert!((c11.frequency_mhz() - 2405.0).abs() < 1e-9);
        assert!((c26.frequency_mhz() - 2480.0).abs() < 1e-9);
    }

    #[test]
    fn range_builds_ordered_set() {
        let set = ChannelId::range(11, 14).unwrap();
        assert_eq!(set.len(), 4);
        let nums: Vec<u8> = set.iter().map(ChannelId::number).collect();
        assert_eq!(nums, vec![11, 12, 13, 14]);
    }

    #[test]
    fn range_rejects_inverted_and_out_of_band() {
        assert!(ChannelId::range(14, 11).is_err());
        assert!(ChannelId::range(9, 12).is_err());
        assert!(ChannelId::range(20, 30).is_err());
    }

    #[test]
    fn all_has_sixteen_channels() {
        assert_eq!(ChannelId::all().len(), BAND_SIZE);
        assert_eq!(BAND_SIZE, 16);
    }

    #[test]
    fn hopping_formula_matches_standard() {
        let set = ChannelId::range(11, 14).unwrap(); // m = 4
                                                     // (ASN + offset) mod 4 indexes the mapping table.
        assert_eq!(set.physical(0, 0).number(), 11);
        assert_eq!(set.physical(0, 3).number(), 14);
        assert_eq!(set.physical(1, 3).number(), 11); // (1+3)%4 = 0
        assert_eq!(set.physical(7, 2).number(), 12); // (7+2)%4 = 1
    }

    #[test]
    fn hopping_cycles_all_channels_for_fixed_offset() {
        let set = ChannelId::range(11, 16).unwrap();
        let mut seen: Vec<u8> =
            (0..set.len()).map(|asn| set.physical(asn as u64, 2).number()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn set_dedups_preserving_order() {
        let c = |n| ChannelId::new(n).unwrap();
        let set = ChannelSet::new([c(15), c(11), c(15), c(12)]);
        let nums: Vec<u8> = set.iter().map(ChannelId::number).collect();
        assert_eq!(nums, vec![15, 11, 12]);
    }

    #[test]
    fn take_prefix() {
        let set = ChannelId::range(11, 18).unwrap();
        let three = set.take(3);
        let nums: Vec<u8> = three.iter().map(ChannelId::number).collect();
        assert_eq!(nums, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn take_more_than_available_panics() {
        let set = ChannelId::range(11, 12).unwrap();
        let _ = set.take(5);
    }
}
