//! Tiny data-parallel helper over std scoped threads.
//!
//! Hosted in `wsan_net` so the graph layer's multi-source BFS builders can
//! fan out over cores without a dependency cycle; `wsan_expr::parallel`
//! re-exports these for the schedulability sweeps (100 independent flow
//! sets per configuration point) and the campaign worker pool.

/// Applies `f` to `0..n` across up to `available_parallelism` threads and
/// returns the results in index order.
///
/// `f` must be `Sync` because multiple worker threads call it concurrently.
///
/// # Panics
///
/// If `f` panics for some item, the panic is re-raised on the calling
/// thread with the failing index and the original payload's message
/// attached (e.g. `parallel_map: item 3 panicked: boom`), instead of an
/// anonymous "worker panicked" abort that loses which sweep point died.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, 0, f)
}

/// [`parallel_map`] with an explicit worker count; `workers == 0` selects
/// `available_parallelism`. The campaign engine's `--jobs` flag and tests
/// that need a deterministic pool size regardless of the host's core count
/// route through this variant.
pub fn parallel_map_with<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        workers
    }
    .min(n);
    if workers <= 1 {
        return (0..n).map(|i| call_checked(&f, i)).collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Set by the first worker whose item panics; the others stop claiming
    // indices instead of burning cores on a sweep that is already dead.
    let poisoned = std::sync::atomic::AtomicBool::new(false);
    let f = &f;
    let mut failure: Option<(usize, String)> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let poisoned = &poisoned;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, T)> = Vec::new();
                loop {
                    if poisoned.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let wrapped = std::panic::AssertUnwindSafe(|| f(i));
                    match std::panic::catch_unwind(wrapped) {
                        Ok(value) => out.push((i, value)),
                        Err(payload) => {
                            poisoned.store(true, std::sync::atomic::Ordering::Relaxed);
                            return Err((i, payload_message(payload.as_ref())));
                        }
                    }
                }
                Ok(out)
            }));
        }
        for handle in handles {
            match handle.join().expect("worker thread could not be joined") {
                Ok(chunk) => {
                    for (i, value) in chunk {
                        results[i] = Some(value);
                    }
                }
                // keep the earliest failing index for a deterministic report
                Err((i, msg)) if failure.as_ref().is_none_or(|(j, _)| i < *j) => {
                    failure = Some((i, msg));
                }
                Err(_) => {}
            }
        }
    });
    if let Some((index, message)) = failure {
        panic!("parallel_map: item {index} panicked: {message}");
    }
    results.into_iter().map(|r| r.expect("all indices computed")).collect()
}

/// Sequential fallback with the same panic enrichment as the worker path.
fn call_checked<T, F: Fn(usize) -> T>(f: &F, i: usize) -> T {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
        Ok(value) => value,
        Err(payload) => {
            panic!("parallel_map: item {i} panicked: {}", payload_message(payload.as_ref()))
        }
    }
}

/// Best-effort extraction of the human-readable message from a panic
/// payload (`&str` and `String` cover `panic!` and `assert!` payloads).
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    #[should_panic(expected = "parallel_map: item 3 panicked: sweep point exploded")]
    fn panicking_item_reports_its_index_and_message() {
        let _ = parallel_map(8, |i| {
            if i == 3 {
                panic!("sweep point exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "item 0 panicked")]
    fn sequential_path_reports_too() {
        // n = 1 takes the workers <= 1 fallback
        let _: Vec<u32> = parallel_map(1, |_| panic!("boom"));
    }

    #[test]
    fn poisoned_pool_stops_claiming_after_a_panic() {
        // Item 0 panics immediately; every other item sleeps. Without the
        // poison flag the pool drains all n items anyway; with it, only the
        // items already in flight (at most ~2x the worker count) run. The
        // worker count is pinned so the test exercises the pool even on a
        // single-core host.
        let workers = 4;
        let n = workers * 8;
        let started = std::sync::atomic::AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Vec<usize> = parallel_map_with(n, workers, |i| {
                started.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i == 0 {
                    panic!("first sweep point died");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                i
            });
        }));
        assert!(result.is_err(), "the failure must still be re-raised");
        let ran = started.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            ran < n / 2,
            "poisoned pool still executed {ran} of {n} items (expected far fewer)"
        );
    }

    #[test]
    fn earliest_failing_index_wins() {
        // All items panic; the re-raised index must be deterministic (0).
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = parallel_map(16, |i| panic!("item-{i}"));
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with("parallel_map: item 0 panicked"), "got: {msg}");
    }
}
