//! Seeded parametric generator of city-scale plants.
//!
//! The paper's evaluation tops out at two ~80-node testbeds. This module
//! generates *plants* — campuses of multi-floor buildings with 1k–10k
//! nodes — whose per-link, per-channel PRR comes from the same indoor
//! [`propagation`](crate::propagation) model the testbeds use. Where a
//! [`Topology`](crate::Topology) stores a dense `n² × 16` PRR table
//! (~19 TB at 10k nodes), a [`Plant`] stores links *sparsely*: the
//! propagation model's hard PRR floor zeroes every link beyond a radio
//! cutoff of a few tens of meters, so only geometric neighbors are kept.
//!
//! Determinism: every draw affecting a pair `{a, b}` comes from an RNG
//! seeded by `(seed, a, b)`, so the generated plant is independent of link
//! enumeration order and identical across runs and thread counts.

use crate::channel::BAND_SIZE;
use crate::propagation::PropagationModel;
use crate::{ChannelSet, CommGraph, NodeId, Position, Prr, ReuseGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Layout and scale of a generated plant: a grid of identical multi-floor
/// buildings separated by streets.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantConfig {
    /// Name recorded on the generated [`Plant`].
    pub name: String,
    /// Buildings east-west.
    pub buildings_x: usize,
    /// Buildings north-south.
    pub buildings_y: usize,
    /// Floors per building.
    pub floors: usize,
    /// Nodes placed on each floor of each building.
    pub nodes_per_floor: usize,
    /// Building extent east-west, in meters.
    pub building_width_m: f64,
    /// Building extent north-south, in meters.
    pub building_depth_m: f64,
    /// Street gap between adjacent buildings, in meters. Must stay well
    /// inside radio range or the plant cannot be connected.
    pub street_gap_m: f64,
    /// Radio and environment model (also drives the link cutoff).
    pub model: PropagationModel,
    /// Standard deviation of the campus-wide per-channel quality offset
    /// (dB), modelling channels that are systematically better or worse.
    pub channel_offset_sigma_db: f64,
}

impl PlantConfig {
    /// A campus sized to roughly `target_nodes` nodes: 4-floor buildings
    /// of 25 nodes per floor on a near-square street grid.
    ///
    /// The actual node count is `buildings × floors × nodes_per_floor`,
    /// the smallest such multiple that is ≥ `target_nodes`.
    pub fn city(name: impl Into<String>, target_nodes: usize) -> Self {
        let floors = 4;
        let nodes_per_floor = 25;
        let per_building = floors * nodes_per_floor;
        let buildings = target_nodes.div_ceil(per_building).max(1);
        // the most square grid whose cell count overshoots the least
        let (mut bx, mut by) = (buildings, 1);
        for cand_x in 1..=buildings {
            let cand_y = buildings.div_ceil(cand_x);
            let better_fit = cand_x * cand_y < bx * by;
            let as_good = cand_x * cand_y == bx * by;
            let squarer = cand_x.abs_diff(cand_y) < bx.abs_diff(by);
            if better_fit || (as_good && squarer) {
                (bx, by) = (cand_x, cand_y);
            }
        }
        PlantConfig {
            name: name.into(),
            buildings_x: bx,
            buildings_y: by,
            floors,
            nodes_per_floor,
            building_width_m: 40.0,
            building_depth_m: 20.0,
            street_gap_m: 12.0,
            model: PropagationModel::default(),
            channel_offset_sigma_db: 1.5,
        }
    }

    /// Total node count of the configured plant.
    pub fn node_count(&self) -> usize {
        self.buildings_x * self.buildings_y * self.floors * self.nodes_per_floor
    }
}

/// One measured radio link of a plant: an unordered node pair (`a < b`)
/// with directed per-channel PRR in both directions.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantLink {
    /// Lower endpoint.
    pub a: NodeId,
    /// Upper endpoint.
    pub b: NodeId,
    /// PRR of `a → b` per channel (band indices 0..16).
    pub prr_ab: [f32; BAND_SIZE],
    /// PRR of `b → a` per channel.
    pub prr_ba: [f32; BAND_SIZE],
}

/// A generated city-scale plant: node placement plus a sparse per-channel
/// PRR map over the pairs within radio range.
///
/// Pairs without a stored link have PRR 0 on every channel by
/// construction — they are beyond the propagation model's sensitivity
/// cutoff (see [`link_cutoff_m`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Plant {
    name: String,
    positions: Vec<Position>,
    /// Building index of each node (row-major over the street grid).
    building_of: Vec<u32>,
    /// Links sorted by `(a, b)`.
    links: Vec<PlantLink>,
    /// Per-node neighbor list: `(other endpoint, index into links)`.
    adjacency: Vec<Vec<(NodeId, u32)>>,
    cutoff_m: f64,
}

impl Plant {
    /// Name of the plant.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Building index of `node` (row-major over the street grid).
    pub fn building(&self, node: NodeId) -> u32 {
        self.building_of[node.index()]
    }

    /// The measured links, sorted by `(a, b)`.
    pub fn links(&self) -> &[PlantLink] {
        &self.links
    }

    /// The geometric link cutoff (meters) used during generation: pairs
    /// farther apart carry no link.
    pub fn cutoff_m(&self) -> f64 {
        self.cutoff_m
    }

    /// PRR of the directed link `tx → rx` on `channel`; zero for pairs
    /// without a stored link (beyond the cutoff).
    pub fn prr(&self, tx: NodeId, rx: NodeId, channel: crate::ChannelId) -> Prr {
        if tx == rx {
            return Prr::ZERO;
        }
        let Some(&(_, idx)) = self.adjacency[tx.index()].iter().find(|(other, _)| *other == rx)
        else {
            return Prr::ZERO;
        };
        let link = &self.links[idx as usize];
        let ch = channel.band_index();
        let raw = if link.a == tx { link.prr_ab[ch] } else { link.prr_ba[ch] };
        Prr::saturating(f64::from(raw))
    }

    /// Builds the communication graph over `channels` with link-selection
    /// threshold `prr_t`: an edge `uv` exists iff `PRR ≥ prr_t` in **both**
    /// directions on **every** channel (the [`Topology::comm_graph`]
    /// rule, evaluated over the sparse link set).
    ///
    /// [`Topology::comm_graph`]: crate::Topology::comm_graph
    pub fn comm_graph(&self, channels: &ChannelSet, prr_t: Prr) -> CommGraph {
        let t = prr_t.value() as f32;
        let edges: Vec<(NodeId, NodeId)> = self
            .links
            .iter()
            .filter(|l| {
                channels
                    .iter()
                    .all(|ch| l.prr_ab[ch.band_index()] >= t && l.prr_ba[ch.band_index()] >= t)
            })
            .map(|l| (l.a, l.b))
            .collect();
        CommGraph::from_edges(self.node_count(), &edges)
    }

    /// Builds the channel reuse graph over `channels`: an edge `uv` exists
    /// iff **any** channel has `PRR > 0` in **either** direction (the
    /// [`Topology::reuse_graph`] rule over the sparse link set).
    ///
    /// [`Topology::reuse_graph`]: crate::Topology::reuse_graph
    pub fn reuse_graph(&self, channels: &ChannelSet) -> ReuseGraph {
        let edges: Vec<(NodeId, NodeId)> = self
            .links
            .iter()
            .filter(|l| {
                channels
                    .iter()
                    .any(|ch| l.prr_ab[ch.band_index()] > 0.0 || l.prr_ba[ch.band_index()] > 0.0)
            })
            .map(|l| (l.a, l.b))
            .collect();
        ReuseGraph::from_edges(self.node_count(), &edges)
    }
}

/// The distance beyond which the propagation model cannot yield a nonzero
/// PRR even under a `+margin_db` shadowing draw: the smallest `d` where
/// `prr_from_rssi(mean_rssi(d, 0) + margin_db)` hits the hard floor.
///
/// Link generation only evaluates pairs within this cutoff; everything
/// farther is PRR 0 *by definition of the plant model*. The margin is
/// sized at 4σ of the combined shadowing terms, so the truncation lives
/// far out in the shadowing tail.
pub fn link_cutoff_m(model: &PropagationModel, margin_db: f64) -> f64 {
    let dead = |d: f64| model.prr_from_rssi(model.mean_rssi_dbm(d, 0) + margin_db).value() <= 0.0;
    let mut lo = 0.5;
    let mut hi = 1.0;
    while !dead(hi) {
        hi *= 2.0;
        if hi > 1e6 {
            return hi; // pathological model without a sensitivity floor
        }
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if dead(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Combined 4σ shadowing margin of a configuration, used to size the link
/// cutoff conservatively.
fn shadow_margin_db(config: &PlantConfig) -> f64 {
    let m = &config.model;
    let var = m.pair_shadowing_sigma_db.powi(2)
        + m.channel_shadowing_sigma_db.powi(2)
        + m.asymmetry_sigma_db.powi(2)
        + config.channel_offset_sigma_db.powi(2);
    4.0 * var.sqrt()
}

/// Generates a validated plant from a configuration and seed.
///
/// Determinism: the same `(config, seed)` always yields the same plant.
/// If a candidate's communication graph (all 16 channels, `PRR_t = 0.9`)
/// is disconnected, deterministic retry seeds are derived from `seed`
/// until one passes — the same convention as
/// [`testbeds::generate`](crate::testbeds::generate).
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero buildings, floors, or
/// nodes per floor; more than 65 536 nodes), or if no connected candidate
/// is found within 64 attempts (streets far wider than radio range).
pub fn generate(config: &PlantConfig, seed: u64) -> Plant {
    assert!(config.buildings_x > 0 && config.buildings_y > 0, "plant needs at least one building");
    assert!(config.floors > 0, "buildings need at least one floor");
    assert!(config.nodes_per_floor > 0, "floors need at least one node");
    assert!(
        config.node_count() <= usize::from(u16::MAX) + 1,
        "plant exceeds the 65 536-node id space"
    );
    let all = crate::ChannelId::all();
    let prr_t = Prr::new(0.9).expect("0.9 is a valid PRR");
    for attempt in 0..64u64 {
        let candidate_seed = seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let plant = generate_unchecked(config, candidate_seed);
        if plant.comm_graph(&all, prr_t).is_connected() {
            return plant;
        }
    }
    panic!(
        "no connected communication graph after 64 attempts for plant '{}'; \
         the street grid is out of radio range",
        config.name
    );
}

/// Generates a candidate plant without the connectivity check.
fn generate_unchecked(config: &PlantConfig, seed: u64) -> Plant {
    let mut rng = StdRng::seed_from_u64(seed);
    // Campus-wide per-channel quality offsets (drawn before any pair state
    // so they do not depend on the layout).
    let channel_offsets: Vec<f64> =
        (0..BAND_SIZE).map(|_| gaussian(&mut rng) * config.channel_offset_sigma_db).collect();
    let (positions, building_of) = place_nodes(config, &mut rng);

    let cutoff = link_cutoff_m(&config.model, shadow_margin_db(config));
    let links = generate_links(config, seed, &positions, cutoff, &channel_offsets);

    let mut adjacency = vec![Vec::new(); positions.len()];
    for (i, link) in links.iter().enumerate() {
        adjacency[link.a.index()].push((link.b, i as u32));
        adjacency[link.b.index()].push((link.a, i as u32));
    }
    Plant { name: config.name.clone(), positions, building_of, links, adjacency, cutoff_m: cutoff }
}

/// Places nodes on a jittered grid per floor per building (the
/// [`testbeds`](crate::testbeds) placement, tiled over the street grid).
fn place_nodes(config: &PlantConfig, rng: &mut StdRng) -> (Vec<Position>, Vec<u32>) {
    let mut positions = Vec::with_capacity(config.node_count());
    let mut building_of = Vec::with_capacity(config.node_count());
    let pitch_x = config.building_width_m + config.street_gap_m;
    let pitch_y = config.building_depth_m + config.street_gap_m;
    let count = config.nodes_per_floor;
    // grid dimensions closest to the floor aspect ratio
    let cols =
        ((count as f64 * config.building_width_m / config.building_depth_m).sqrt()).ceil() as usize;
    let cols = cols.max(1);
    let rows = count.div_ceil(cols);
    let dx = config.building_width_m / cols as f64;
    let dy = config.building_depth_m / rows as f64;
    for by in 0..config.buildings_y {
        for bx in 0..config.buildings_x {
            let building = (by * config.buildings_x + bx) as u32;
            let x0 = bx as f64 * pitch_x;
            let y0 = by as f64 * pitch_y;
            for floor in 0..config.floors {
                let z = floor as f64 * config.model.floor_height_m;
                let mut placed = 0;
                'grid: for r in 0..rows {
                    for c in 0..cols {
                        if placed == count {
                            break 'grid;
                        }
                        let jx = (rng.gen::<f64>() - 0.5) * dx * 0.6;
                        let jy = (rng.gen::<f64>() - 0.5) * dy * 0.6;
                        positions.push(Position::new(
                            x0 + (c as f64 + 0.5) * dx + jx,
                            y0 + (r as f64 + 0.5) * dy + jy,
                            z,
                        ));
                        building_of.push(building);
                        placed += 1;
                    }
                }
            }
        }
    }
    (positions, building_of)
}

/// Evaluates every pair within `cutoff` through the propagation model,
/// keeping the links with a nonzero PRR somewhere. Neighbor candidates
/// come from a uniform `cutoff × cutoff` spatial grid, so the work is
/// `O(nodes × neighborhood)` instead of `O(nodes²)`.
fn generate_links(
    config: &PlantConfig,
    seed: u64,
    positions: &[Position],
    cutoff: f64,
    channel_offsets: &[f64],
) -> Vec<PlantLink> {
    let model = &config.model;
    let cell = cutoff.max(1.0);
    let key = |p: &Position| ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
    let mut grid: std::collections::BTreeMap<(i64, i64), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, p) in positions.iter().enumerate() {
        grid.entry(key(p)).or_default().push(i);
    }
    let mut links = Vec::new();
    for (i, pa) in positions.iter().enumerate() {
        let (kx, ky) = key(pa);
        for nx in (kx - 1)..=(kx + 1) {
            for ny in (ky - 1)..=(ky + 1) {
                let Some(bucket) = grid.get(&(nx, ny)) else { continue };
                for &j in bucket {
                    if j <= i {
                        continue;
                    }
                    let pb = &positions[j];
                    let d = pa.distance(pb);
                    if d > cutoff {
                        continue;
                    }
                    if let Some(link) = link_between(model, seed, i, j, pa, pb, d, channel_offsets)
                    {
                        links.push(link);
                    }
                }
            }
        }
    }
    links.sort_by_key(|l| (l.a, l.b));
    links
}

/// Draws one pair's per-channel PRR from an RNG keyed by `(seed, a, b)`;
/// returns `None` when every direction of every channel lands on zero.
#[allow(clippy::too_many_arguments)]
fn link_between(
    model: &PropagationModel,
    seed: u64,
    a: usize,
    b: usize,
    pa: &Position,
    pb: &Position,
    d: f64,
    channel_offsets: &[f64],
) -> Option<PlantLink> {
    let floors = pa.floors_between(pb, model.floor_height_m);
    let mean = model.mean_rssi_dbm(d, floors);
    let mut rng = StdRng::seed_from_u64(pair_seed(seed, a, b));
    // Pair-level shadowing: one draw for the whole band (the testbeds
    // draw order, replayed from the pair-keyed RNG).
    let pair_shadow = gaussian(&mut rng) * model.pair_shadowing_sigma_db;
    let mut prr_ab = [0.0f32; BAND_SIZE];
    let mut prr_ba = [0.0f32; BAND_SIZE];
    let mut any = false;
    for ch in 0..BAND_SIZE {
        let shadow = pair_shadow
            + gaussian(&mut rng) * model.channel_shadowing_sigma_db
            + channel_offsets[ch];
        for dir in [&mut prr_ab, &mut prr_ba] {
            // ... plus a small per-direction asymmetry
            let asym = gaussian(&mut rng) * model.asymmetry_sigma_db;
            let prr = model.prr_from_rssi(mean + shadow + asym).value() as f32;
            dir[ch] = prr;
            any |= prr > 0.0;
        }
    }
    any.then(|| PlantLink { a: NodeId::new(a), b: NodeId::new(b), prr_ab, prr_ba })
}

/// Order-independent per-pair seed: a splitmix64-style finalizer over the
/// base seed and both endpoints.
fn pair_seed(seed: u64, a: usize, b: usize) -> u64 {
    let mut x = seed
        ^ (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (b as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Standard normal draw via Box–Muller (mirrors `testbeds::gaussian`).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChannelId;

    fn small_config() -> PlantConfig {
        PlantConfig {
            name: "small".to_string(),
            buildings_x: 2,
            buildings_y: 1,
            floors: 3,
            nodes_per_floor: 10,
            building_width_m: 40.0,
            building_depth_m: 20.0,
            street_gap_m: 12.0,
            model: PropagationModel::default(),
            channel_offset_sigma_db: 1.5,
        }
    }

    #[test]
    fn small_plant_is_connected_and_sized() {
        let plant = generate(&small_config(), 1);
        assert_eq!(plant.node_count(), 60);
        let g = plant.comm_graph(&ChannelId::all(), Prr::new(0.9).unwrap());
        assert!(g.is_connected());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_config(), 7);
        let b = generate(&small_config(), 7);
        assert_eq!(a, b);
        let c = generate(&small_config(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn links_are_sparse_and_within_cutoff() {
        let plant = generate(&small_config(), 3);
        let n = plant.node_count();
        assert!(plant.links().len() < n * (n - 1) / 2, "plant must not be a clique");
        for link in plant.links() {
            assert!(link.a < link.b);
            let d = plant.position(link.a).distance(&plant.position(link.b));
            assert!(d <= plant.cutoff_m(), "link of length {d} beyond cutoff");
        }
    }

    #[test]
    fn prr_lookup_matches_link_table_and_defaults_to_zero() {
        // a 3-building row is wider than the ~100 m link cutoff, so the
        // far corners are guaranteed to carry no link
        let mut cfg = small_config();
        cfg.buildings_x = 3;
        let plant = generate(&cfg, 5);
        let ch = ChannelId::new(13).unwrap();
        let link = &plant.links()[0];
        let expect = f64::from(link.prr_ab[ch.band_index()]);
        assert!((plant.prr(link.a, link.b, ch).value() - expect).abs() < 1e-9);
        // the farthest pair must be beyond the cutoff in a 2-building plant
        let (mut far_a, mut far_b, mut far_d) = (NodeId::new(0), NodeId::new(0), 0.0);
        for a in plant.nodes() {
            for b in plant.nodes() {
                let d = plant.position(a).distance(&plant.position(b));
                if d > far_d {
                    (far_a, far_b, far_d) = (a, b, d);
                }
            }
        }
        assert!(far_d > plant.cutoff_m());
        assert_eq!(plant.prr(far_a, far_b, ch), Prr::ZERO);
        assert_eq!(plant.prr(far_a, far_a, ch), Prr::ZERO);
    }

    #[test]
    fn city_config_reaches_the_target_scale() {
        let cfg = PlantConfig::city("kilo", 1000);
        assert!(cfg.node_count() >= 1000);
        assert!(cfg.node_count() <= 1100, "sizing overshoot: {}", cfg.node_count());
    }

    #[test]
    fn reuse_graph_is_denser_than_comm_graph() {
        let plant = generate(&small_config(), 11);
        let chans = ChannelId::range(11, 14).unwrap();
        let comm = plant.comm_graph(&chans, Prr::new(0.9).unwrap());
        let reuse = plant.reuse_graph(&chans);
        assert!(reuse.edge_count() > comm.edge_count());
    }

    #[test]
    fn buildings_are_assigned_row_major() {
        let plant = generate(&small_config(), 13);
        assert_eq!(plant.building(NodeId::new(0)), 0);
        assert_eq!(plant.building(NodeId::new(59)), 1);
        // building 1 sits one street east of building 0
        let p0 = plant.position(NodeId::new(0));
        let p1 = plant.position(NodeId::new(30));
        assert!(p1.x > p0.x);
    }

    #[test]
    fn cutoff_is_finite_and_indoor_scale() {
        let cutoff = link_cutoff_m(&PropagationModel::default(), 20.0);
        assert!(cutoff > 10.0 && cutoff < 500.0, "cutoff {cutoff} out of range");
    }
}
