//! Error type for network-model construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying the network model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// An IEEE 802.15.4 channel number outside the 2.4 GHz band (11..=26).
    InvalidChannel(u8),
    /// A channel range with `first > last` or outside the band.
    InvalidChannelRange {
        /// First channel requested.
        first: u8,
        /// Last channel requested.
        last: u8,
    },
    /// A PRR value outside `[0.0, 1.0]` (or NaN).
    InvalidPrr(f64),
    /// A node index beyond the topology size.
    UnknownNode(usize),
    /// A channel that the topology holds no measurements for.
    UnmeasuredChannel(u8),
    /// Route construction failed: destination unreachable on the
    /// communication graph.
    Unreachable {
        /// Route source.
        from: usize,
        /// Route destination.
        to: usize,
    },
    /// The topology has no nodes, or too few for the requested operation.
    TooFewNodes {
        /// Nodes required.
        required: usize,
        /// Nodes present.
        present: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidChannel(c) => {
                write!(f, "channel {c} is outside the IEEE 802.15.4 2.4 GHz band (11..=26)")
            }
            NetError::InvalidChannelRange { first, last } => {
                write!(f, "invalid channel range {first}..={last}")
            }
            NetError::InvalidPrr(v) => write!(f, "PRR {v} is not within [0.0, 1.0]"),
            NetError::UnknownNode(i) => write!(f, "node index {i} is not in the topology"),
            NetError::UnmeasuredChannel(c) => {
                write!(f, "topology has no PRR measurements for channel {c}")
            }
            NetError::Unreachable { from, to } => {
                write!(f, "no route from node {from} to node {to} on the communication graph")
            }
            NetError::TooFewNodes { required, present } => {
                write!(f, "operation requires {required} nodes but topology has {present}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NetError::InvalidChannel(5);
        let msg = e.to_string();
        assert!(msg.contains('5'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }

    #[test]
    fn unreachable_display_names_both_endpoints() {
        let e = NetError::Unreachable { from: 3, to: 9 };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('9'));
    }
}
