//! Descriptive summaries of a topology — the numbers behind a Fig. 7-style
//! testbed characterization.

use crate::{ChannelId, ChannelSet, NodeId, Prr, Topology};
use serde::{Deserialize, Serialize};

/// Structural and link-quality summary of a topology over a channel set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySummary {
    /// Topology name.
    pub name: String,
    /// Total node count.
    pub node_count: usize,
    /// Nodes per floor, by ascending floor index.
    pub nodes_per_floor: Vec<usize>,
    /// Number of communication-grade links (both directions ≥ `prr_t` on
    /// every channel of the set).
    pub comm_edges: usize,
    /// Communication-graph diameter.
    pub comm_diameter: u32,
    /// Min/mean/max communication degree.
    pub comm_degree: (usize, f64, usize),
    /// Number of reuse-graph edges (any positive PRR).
    pub reuse_edges: usize,
    /// Reuse-graph diameter (`λ_R`).
    pub reuse_diameter: u32,
    /// Fraction of directed node pairs with PRR ≥ 0.9 / in (0, 0.9) / = 0,
    /// pooled over the channel set.
    pub prr_classes: PrrClasses,
    /// Per-channel mean PRR over all directed pairs, in channel order.
    pub channel_quality: Vec<(u8, f64)>,
}

/// Coarse link-quality classes of directed (pair, channel) observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrrClasses {
    /// Fraction with PRR ≥ 0.9 — "good" in the bimodal-link literature.
    pub good: f64,
    /// Fraction with 0 < PRR < 0.9 — the gray zone.
    pub gray: f64,
    /// Fraction with PRR = 0 — no connectivity.
    pub dead: f64,
}

/// Computes the summary of `topology` over `channels` at threshold `prr_t`.
pub fn summarize(topology: &Topology, channels: &ChannelSet, prr_t: Prr) -> TopologySummary {
    let comm = topology.comm_graph(channels, prr_t);
    let reuse = topology.reuse_graph(channels);
    let n = topology.node_count();

    // floors
    let floor_height = topology.propagation_model().map(|m| m.floor_height_m).unwrap_or(3.5);
    let mut floors = std::collections::BTreeMap::<i64, usize>::new();
    for node in topology.nodes() {
        *floors.entry((topology.position(node).z / floor_height).round() as i64).or_default() += 1;
    }

    // degrees
    let degrees: Vec<usize> = (0..n).map(|i| comm.degree(NodeId::new(i))).collect();
    let comm_degree = if degrees.is_empty() {
        (0, 0.0, 0)
    } else {
        (
            *degrees.iter().min().expect("non-empty"),
            degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
            *degrees.iter().max().expect("non-empty"),
        )
    };

    // PRR classes and channel quality
    let mut good = 0u64;
    let mut gray = 0u64;
    let mut dead = 0u64;
    let mut channel_quality = Vec::new();
    for ch in channels.iter() {
        let mut sum = 0.0;
        let mut pairs = 0u64;
        for a in topology.nodes() {
            for b in topology.nodes() {
                if a == b {
                    continue;
                }
                let p = topology.prr(a, b, ch).value();
                sum += p;
                pairs += 1;
                if p >= prr_t.value() {
                    good += 1;
                } else if p > 0.0 {
                    gray += 1;
                } else {
                    dead += 1;
                }
            }
        }
        channel_quality.push((ch.number(), if pairs == 0 { 0.0 } else { sum / pairs as f64 }));
    }
    let total = (good + gray + dead).max(1) as f64;

    TopologySummary {
        name: topology.name().to_string(),
        node_count: n,
        nodes_per_floor: floors.into_values().collect(),
        comm_edges: comm.edge_count(),
        comm_diameter: comm.diameter(),
        comm_degree,
        reuse_edges: reuse.edge_count(),
        reuse_diameter: reuse.diameter(),
        prr_classes: PrrClasses {
            good: good as f64 / total,
            gray: gray as f64 / total,
            dead: dead as f64 / total,
        },
        channel_quality,
    }
}

/// Convenience: summary over the standard 4-channel set at `PRR_t = 0.9`.
pub fn standard_summary(topology: &Topology) -> TopologySummary {
    let channels = ChannelId::range(11, 14).expect("valid range");
    summarize(topology, &channels, Prr::new(0.9).expect("valid threshold"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbeds;

    #[test]
    fn summary_of_wustl_matches_direct_queries() {
        let topo = testbeds::wustl(1);
        let channels = ChannelId::range(11, 14).unwrap();
        let prr_t = Prr::new(0.9).unwrap();
        let s = summarize(&topo, &channels, prr_t);
        assert_eq!(s.node_count, 60);
        assert_eq!(s.nodes_per_floor, vec![20, 20, 20]);
        assert_eq!(s.comm_edges, topo.comm_graph(&channels, prr_t).edge_count());
        assert_eq!(s.reuse_edges, topo.reuse_graph(&channels).edge_count());
        assert!(s.comm_degree.0 <= s.comm_degree.1 as usize);
        assert!(s.comm_degree.1 <= s.comm_degree.2 as f64);
    }

    #[test]
    fn prr_classes_partition_to_one() {
        let topo = testbeds::wustl(2);
        let s = standard_summary(&topo);
        let sum = s.prr_classes.good + s.prr_classes.gray + s.prr_classes.dead;
        assert!((sum - 1.0).abs() < 1e-9);
        // a sharp PRR curve makes links bimodal: the gray zone is small
        assert!(s.prr_classes.gray < s.prr_classes.good + s.prr_classes.dead);
    }

    #[test]
    fn channel_quality_covers_the_set_in_order() {
        let topo = testbeds::indriya(3);
        let channels = ChannelId::range(12, 15).unwrap();
        let s = summarize(&topo, &channels, Prr::new(0.9).unwrap());
        let nums: Vec<u8> = s.channel_quality.iter().map(|(c, _)| *c).collect();
        assert_eq!(nums, vec![12, 13, 14, 15]);
        for (_, q) in &s.channel_quality {
            assert!((0.0..=1.0).contains(q));
        }
    }

    #[test]
    fn summary_serializes() {
        let topo = testbeds::wustl(4);
        let s = standard_summary(&topo);
        let json = serde_json::to_string(&s).unwrap();
        let back: TopologySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
