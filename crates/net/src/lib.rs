//! Network substrate for real-time industrial wireless sensor-actuator
//! networks (WSANs).
//!
//! This crate models everything the WirelessHART network manager knows about
//! the physical network before any scheduling happens:
//!
//! * [`Topology`] — the set of field devices together with the measured
//!   packet-reception ratio (PRR) of every directed link on every IEEE
//!   802.15.4 channel (the "topology information" collected from testbeds in
//!   the paper),
//! * [`CommGraph`] — the *communication graph* used for routing: a
//!   bidirectional edge exists only when both directions achieve
//!   `PRR >= PRR_t` on **all** channels in use (the network channel-hops, so
//!   a routing link must be reliable everywhere it will hop),
//! * [`ReuseGraph`] — the *channel reuse graph* used for interference
//!   estimation: an edge exists when **any** channel has nonzero PRR in
//!   either direction; hop distances on this graph gate concurrent
//!   same-channel transmissions,
//! * [`testbeds`] — seeded synthetic reconstructions of the two physical
//!   testbeds evaluated in the paper (Indriya, 80 nodes; WUSTL, 60 nodes),
//!   built on a log-distance path-loss + shadowing [`propagation`] model,
//! * [`routing`] — shortest-path route construction over the communication
//!   graph.
//!
//! # Example
//!
//! ```
//! use wsan_net::{testbeds, ChannelId, Prr};
//!
//! // A deterministic 60-node, 3-floor topology in the spirit of the WUSTL
//! // testbed, with per-channel PRR for all 16 channels.
//! let topo = testbeds::wustl(7);
//! let channels = ChannelId::range(11, 14).unwrap();
//! let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
//! let reuse = topo.reuse_graph(&channels);
//! assert!(comm.is_connected());
//! assert!(reuse.diameter() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod error;
mod graph;
mod link;
mod node;
pub mod parallel;
pub mod plants;
pub mod propagation;
pub mod routing;
pub mod selection;
pub mod summary;
mod topology;

pub mod testbeds;

pub use channel::{ChannelId, ChannelSet};
pub use error::NetError;
pub use graph::{CappedHops, CommGraph, HopMatrix, ReuseGraph, UNREACHABLE};
pub use link::{DirectedLink, LinkPrr, Prr};
pub use node::{NodeId, NodeRole, Position};
pub use routing::Route;
pub use selection::ChannelSelection;
pub use summary::TopologySummary;
pub use topology::Topology;
