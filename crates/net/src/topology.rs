//! The measured network topology: nodes, positions, and per-channel PRR.

use crate::channel::BAND_SIZE;
use crate::{
    ChannelId, ChannelSet, CommGraph, DirectedLink, NetError, NodeId, Position, Prr, ReuseGraph,
};
use serde::{Deserialize, Serialize};

/// A network topology: a set of field devices plus the PRR of every directed
/// link on every measured channel.
///
/// This is the raw material the WirelessHART network manager works from: the
/// paper's "topology information includes the PRRs of all links in the
/// network in all 16 channels". Construct one by hand with
/// [`Topology::new`] and the `set_*` methods, or synthesize a testbed-like
/// one through [`testbeds`](crate::testbeds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    positions: Vec<Position>,
    /// Shadowing (dB) per unordered pair per channel, frozen at build time.
    /// Kept so the simulator can compute interference powers consistent with
    /// the PRR table. Indexed by `pair_index(a, b) * BAND_SIZE + ch`.
    shadowing_db: Vec<f64>,
    /// Directed PRR: `prr[(tx * n + rx) * BAND_SIZE + ch]` for channels
    /// 11..=26 mapped to indices 0..16.
    prr: Vec<f32>,
    /// The propagation model the tables were synthesized from (used again by
    /// the interference simulator). `None` for hand-built topologies.
    model: Option<crate::propagation::PropagationModel>,
}

impl Topology {
    /// Creates an empty topology (all PRRs zero) over the given node
    /// positions.
    pub fn new(name: impl Into<String>, positions: Vec<Position>) -> Self {
        let n = positions.len();
        Topology {
            name: name.into(),
            positions,
            shadowing_db: vec![0.0; n * n * BAND_SIZE],
            prr: vec![0.0; n * n * BAND_SIZE],
            model: None,
        }
    }

    /// Human-readable name of the topology ("indriya", "wustl", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// The propagation model used to synthesize this topology, if any.
    pub fn propagation_model(&self) -> Option<&crate::propagation::PropagationModel> {
        self.model.as_ref()
    }

    /// Records the propagation model used to synthesize the PRR tables.
    pub fn set_propagation_model(&mut self, model: crate::propagation::PropagationModel) {
        self.model = Some(model);
    }

    fn idx(&self, tx: NodeId, rx: NodeId, ch: ChannelId) -> usize {
        let n = self.node_count();
        (tx.index() * n + rx.index()) * BAND_SIZE + ch.band_index()
    }

    fn pair_idx(&self, a: NodeId, b: NodeId, ch: ChannelId) -> usize {
        let (lo, hi) = if a.index() <= b.index() { (a, b) } else { (b, a) };
        let n = self.node_count();
        (lo.index() * n + hi.index()) * BAND_SIZE + ch.band_index()
    }

    /// PRR of the directed link `tx → rx` on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn prr(&self, tx: NodeId, rx: NodeId, channel: ChannelId) -> Prr {
        if tx == rx {
            return Prr::ZERO;
        }
        Prr::saturating(f64::from(self.prr[self.idx(tx, rx, channel)]))
    }

    /// Sets the PRR of the directed link `tx → rx` on `channel`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for out-of-range nodes.
    pub fn set_prr(
        &mut self,
        tx: NodeId,
        rx: NodeId,
        channel: ChannelId,
        prr: Prr,
    ) -> Result<(), NetError> {
        let n = self.node_count();
        for id in [tx, rx] {
            if id.index() >= n {
                return Err(NetError::UnknownNode(id.index()));
            }
        }
        let i = self.idx(tx, rx, channel);
        self.prr[i] = prr.value() as f32;
        Ok(())
    }

    /// Frozen shadowing (dB) of the unordered pair `{a, b}` on `channel`.
    ///
    /// Shared with the interference simulator so that interference powers are
    /// consistent with the PRR table.
    pub fn shadowing_db(&self, a: NodeId, b: NodeId, channel: ChannelId) -> f64 {
        self.shadowing_db[self.pair_idx(a, b, channel)]
    }

    /// Records the frozen shadowing of the unordered pair `{a, b}`.
    pub fn set_shadowing_db(&mut self, a: NodeId, b: NodeId, channel: ChannelId, db: f64) {
        let i = self.pair_idx(a, b, channel);
        self.shadowing_db[i] = db;
    }

    /// Minimum PRR of the directed link over a channel set: the quantity the
    /// communication-graph edge rule thresholds ("must be reliable in all
    /// channels used" because of channel hopping).
    pub fn min_prr_over(&self, link: DirectedLink, channels: &ChannelSet) -> Prr {
        let mut min = Prr::ONE;
        for ch in channels {
            let p = self.prr(link.tx, link.rx, ch);
            if p.value() < min.value() {
                min = p;
            }
        }
        min
    }

    /// Maximum PRR of the *unordered pair* over a channel set, in either
    /// direction: the quantity the reuse-graph edge rule tests (`PRR > 0` on
    /// *any* channel in *either* direction).
    pub fn max_pair_prr_over(&self, a: NodeId, b: NodeId, channels: &ChannelSet) -> Prr {
        let mut max = Prr::ZERO;
        for ch in channels {
            for (t, r) in [(a, b), (b, a)] {
                let p = self.prr(t, r, ch);
                if p.value() > max.value() {
                    max = p;
                }
            }
        }
        max
    }

    /// Builds the communication graph over `channels` with link-selection
    /// threshold `prr_t` (paper: 0.9): a bidirectional edge `uv` exists iff
    /// `PRR(u→v) ≥ prr_t` **and** `PRR(v→u) ≥ prr_t` on **every** channel.
    pub fn comm_graph(&self, channels: &ChannelSet, prr_t: Prr) -> CommGraph {
        CommGraph::from_topology(self, channels, prr_t)
    }

    /// Builds the channel reuse graph over `channels`: a bidirectional edge
    /// `uv` exists iff **any** channel has `PRR(u→v) > 0` **or**
    /// `PRR(v→u) > 0`.
    pub fn reuse_graph(&self, channels: &ChannelSet) -> ReuseGraph {
        ReuseGraph::from_topology(self, channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_topology() -> Topology {
        Topology::new("t", vec![Position::new(0.0, 0.0, 0.0), Position::new(5.0, 0.0, 0.0)])
    }

    fn ch(n: u8) -> ChannelId {
        ChannelId::new(n).unwrap()
    }

    #[test]
    fn fresh_topology_has_zero_prr() {
        let t = two_node_topology();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        assert_eq!(t.prr(a, b, ch(11)), Prr::ZERO);
    }

    #[test]
    fn prr_is_directional_and_per_channel() {
        let mut t = two_node_topology();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        t.set_prr(a, b, ch(11), Prr::new(0.9).unwrap()).unwrap();
        t.set_prr(b, a, ch(11), Prr::new(0.4).unwrap()).unwrap();
        t.set_prr(a, b, ch(12), Prr::new(0.2).unwrap()).unwrap();
        assert!((t.prr(a, b, ch(11)).value() - 0.9).abs() < 1e-6);
        assert!((t.prr(b, a, ch(11)).value() - 0.4).abs() < 1e-6);
        assert!((t.prr(a, b, ch(12)).value() - 0.2).abs() < 1e-6);
        assert_eq!(t.prr(b, a, ch(12)), Prr::ZERO);
    }

    #[test]
    fn self_link_prr_is_zero() {
        let mut t = two_node_topology();
        let a = NodeId::new(0);
        // even if set, a self link reports zero
        t.set_prr(a, a, ch(11), Prr::ONE).unwrap();
        assert_eq!(t.prr(a, a, ch(11)), Prr::ZERO);
    }

    #[test]
    fn set_prr_rejects_unknown_node() {
        let mut t = two_node_topology();
        let err = t.set_prr(NodeId::new(0), NodeId::new(9), ch(11), Prr::ONE).unwrap_err();
        assert_eq!(err, NetError::UnknownNode(9));
    }

    #[test]
    fn min_prr_over_takes_worst_channel() {
        let mut t = two_node_topology();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        t.set_prr(a, b, ch(11), Prr::new(0.95).unwrap()).unwrap();
        t.set_prr(a, b, ch(12), Prr::new(0.8).unwrap()).unwrap();
        let set = ChannelId::range(11, 12).unwrap();
        let min = t.min_prr_over(DirectedLink::new(a, b), &set);
        assert!((min.value() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn max_pair_prr_considers_both_directions() {
        let mut t = two_node_topology();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        t.set_prr(b, a, ch(12), Prr::new(0.3).unwrap()).unwrap();
        let set = ChannelId::range(11, 12).unwrap();
        let max = t.max_pair_prr_over(a, b, &set);
        assert!((max.value() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn shadowing_is_symmetric_per_pair() {
        let mut t = two_node_topology();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        t.set_shadowing_db(a, b, ch(13), -2.5);
        assert_eq!(t.shadowing_db(b, a, ch(13)), -2.5);
        assert_eq!(t.shadowing_db(a, b, ch(14)), 0.0);
    }
}

/// Persistence: topologies (with their PRR tables, shadowing state, and
/// propagation model) round-trip through JSON so measured or synthesized
/// tables can be shared between runs and tools.
impl Topology {
    /// Serializes the topology (PRR tables included) to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serialization error (practically impossible
    /// for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a topology previously produced by [`Topology::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the JSON form to `path`.
    ///
    /// # Errors
    ///
    /// Returns I/O or serialization errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Reads a topology saved with [`Topology::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O or parse errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::testbeds;

    #[test]
    fn json_round_trip_preserves_everything() {
        let original = testbeds::wustl(5);
        let json = original.to_json().unwrap();
        let restored = Topology::from_json(&json).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("wsan-topology-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wustl.json");
        let original = testbeds::wustl(6);
        original.save(&path).unwrap();
        let restored = Topology::load(&path).unwrap();
        assert_eq!(original, restored);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Topology::from_json("{not json").is_err());
    }
}
