//! Links and packet-reception ratios.

use crate::{ChannelId, NetError, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A packet-reception ratio: the fraction of transmitted packets that were
/// successfully received, always within `[0.0, 1.0]`.
///
/// PRR is the link-quality measure the WirelessHART network manager already
/// collects; both the communication graph and the channel reuse graph are
/// derived from it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Prr(f64);

impl Prr {
    /// A PRR of exactly zero (no packets get through).
    pub const ZERO: Prr = Prr(0.0);
    /// A PRR of exactly one (a perfect link).
    pub const ONE: Prr = Prr(1.0);

    /// Creates a PRR, validating it lies within `[0.0, 1.0]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPrr`] for NaN or out-of-range values.
    pub fn new(value: f64) -> Result<Self, NetError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            Err(NetError::InvalidPrr(value))
        } else {
            Ok(Prr(value))
        }
    }

    /// Creates a PRR by clamping `value` into `[0.0, 1.0]` (NaN becomes 0).
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Prr(0.0)
        } else {
            Prr(value.clamp(0.0, 1.0))
        }
    }

    /// The ratio as a float in `[0.0, 1.0]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether any packets at all get through (`PRR > 0`), the edge
    /// condition of the channel reuse graph.
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }
}

impl Default for Prr {
    fn default() -> Self {
        Prr::ZERO
    }
}

impl fmt::Display for Prr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// A directed link from a sender to a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DirectedLink {
    /// Transmitting node.
    pub tx: NodeId,
    /// Receiving node.
    pub rx: NodeId,
}

impl DirectedLink {
    /// Creates a directed link `tx → rx`.
    pub fn new(tx: NodeId, rx: NodeId) -> Self {
        DirectedLink { tx, rx }
    }

    /// The link in the opposite direction (carries the acknowledgement).
    pub fn reversed(self) -> Self {
        DirectedLink { tx: self.rx, rx: self.tx }
    }

    /// Whether `node` is an endpoint of this link.
    pub fn touches(self, node: NodeId) -> bool {
        self.tx == node || self.rx == node
    }

    /// Whether two links share an endpoint — the *transmission conflict*
    /// condition of §III-B: a half-duplex radio cannot take part in two
    /// transmissions in the same slot.
    pub fn conflicts_with(self, other: DirectedLink) -> bool {
        self.touches(other.tx) || self.touches(other.rx)
    }
}

impl fmt::Display for DirectedLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.tx, self.rx)
    }
}

/// Per-channel PRR measurements for one directed link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkPrr {
    /// The measured link.
    pub link: DirectedLink,
    /// `(channel, prr)` pairs, one per measured channel.
    pub per_channel: Vec<(ChannelId, Prr)>,
}

impl LinkPrr {
    /// PRR of the link on `channel`, if measured.
    pub fn on(&self, channel: ChannelId) -> Option<Prr> {
        self.per_channel.iter().find(|(c, _)| *c == channel).map(|(_, p)| *p)
    }

    /// Minimum PRR across the given channels; `None` if any is unmeasured.
    pub fn min_over(&self, channels: impl IntoIterator<Item = ChannelId>) -> Option<Prr> {
        let mut min: Option<Prr> = None;
        for c in channels {
            let p = self.on(c)?;
            min = Some(match min {
                Some(m) if m.value() <= p.value() => m,
                _ => p,
            });
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn prr_validation() {
        assert!(Prr::new(0.0).is_ok());
        assert!(Prr::new(1.0).is_ok());
        assert!(Prr::new(-0.1).is_err());
        assert!(Prr::new(1.1).is_err());
        assert!(Prr::new(f64::NAN).is_err());
    }

    #[test]
    fn prr_saturating_clamps() {
        assert_eq!(Prr::saturating(2.0), Prr::ONE);
        assert_eq!(Prr::saturating(-3.0), Prr::ZERO);
        assert_eq!(Prr::saturating(f64::NAN), Prr::ZERO);
        assert!((Prr::saturating(0.5).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prr_positivity() {
        assert!(!Prr::ZERO.is_positive());
        assert!(Prr::new(0.001).unwrap().is_positive());
    }

    #[test]
    fn link_reversal_swaps_endpoints() {
        let l = DirectedLink::new(n(1), n(2));
        let r = l.reversed();
        assert_eq!(r.tx, n(2));
        assert_eq!(r.rx, n(1));
        assert_eq!(r.reversed(), l);
    }

    #[test]
    fn conflict_requires_shared_node() {
        let ab = DirectedLink::new(n(0), n(1));
        let bc = DirectedLink::new(n(1), n(2));
        let cd = DirectedLink::new(n(2), n(3));
        let ef = DirectedLink::new(n(4), n(5));
        assert!(ab.conflicts_with(bc)); // share b
        assert!(bc.conflicts_with(cd)); // share c
        assert!(!ab.conflicts_with(cd));
        assert!(!ab.conflicts_with(ef));
        // conflict is symmetric
        assert!(bc.conflicts_with(ab));
    }

    #[test]
    fn conflict_with_itself() {
        let ab = DirectedLink::new(n(0), n(1));
        assert!(ab.conflicts_with(ab));
        assert!(ab.conflicts_with(ab.reversed()));
    }

    #[test]
    fn link_prr_lookup_and_min() {
        let c11 = ChannelId::new(11).unwrap();
        let c12 = ChannelId::new(12).unwrap();
        let c13 = ChannelId::new(13).unwrap();
        let lp = LinkPrr {
            link: DirectedLink::new(n(0), n(1)),
            per_channel: vec![(c11, Prr::new(0.9).unwrap()), (c12, Prr::new(0.7).unwrap())],
        };
        assert_eq!(lp.on(c11).unwrap().value(), 0.9);
        assert!(lp.on(c13).is_none());
        assert_eq!(lp.min_over([c11, c12]).unwrap().value(), 0.7);
        assert!(lp.min_over([c11, c13]).is_none());
    }
}
