//! The two graphs the network manager derives from PRR measurements:
//! the *communication graph* (for routing) and the *channel reuse graph*
//! (for interference estimation), plus all-pairs hop distances.
//!
//! # Scale notes (DESIGN.md §16)
//!
//! Adjacency is stored in CSR form (flat `offsets` + `targets`), built once
//! by sort/dedup — no per-insert duplicate scans. Hop distances come in two
//! flavors: the dense [`HopMatrix`] (`u32` per cell, kept as the small-graph
//! oracle) and [`CappedHops`], which stores distances *saturated at a cap*
//! in one or two bytes per cell. §V-A only ever asks `hops(a,b) ≥ ρ`, so a
//! saturated distance is exact below the cap and conservative (reuse
//! denied) at or above it. Both are filled by a bit-parallel multi-source
//! BFS that advances 64 sources per sweep and fans blocks out over a worker
//! pool; block results are concatenated in index order, so the output is
//! byte-identical for any worker count.

use crate::parallel::parallel_map_with;
use crate::{ChannelSet, DirectedLink, NodeId, Prr, Topology};
use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::OnceLock;

/// Hop distance that stands for "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Undirected adjacency shared by both graph flavors, in CSR form:
/// the neighbors of node `v` are `targets[offsets[v]..offsets[v + 1]]`,
/// sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Adjacency {
    n: usize,
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Adjacency {
    /// Builds the CSR layout from an iterator of undirected edges.
    /// Duplicates (including reversed duplicates) collapse in the dedup.
    fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        // NodeId is u16, so a directed pair packs into one u32 key; sorting
        // the key vector orders by source then target, which is exactly the
        // CSR layout.
        let mut keys: Vec<u32> = Vec::new();
        for (a, b) in pairs {
            debug_assert!(a != b, "self loops are not meaningful");
            let (ai, bi) = (a.index() as u32, b.index() as u32);
            keys.push(ai << 16 | bi);
            keys.push(bi << 16 | ai);
        }
        keys.sort_unstable();
        keys.dedup();
        let mut offsets = vec![0u32; n + 1];
        for &k in &keys {
            offsets[(k >> 16) as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = keys.iter().map(|&k| NodeId::new((k & 0xffff) as usize)).collect();
        Adjacency { n, offsets, targets }
    }

    fn neighbors(&self, a: NodeId) -> &[NodeId] {
        let i = a.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    fn degree(&self, a: NodeId) -> usize {
        self.neighbors(a).len()
    }

    fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Single-source BFS hop distances.
    fn bfs(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![UNREACHABLE; self.n];
        let mut q = VecDeque::new();
        dist[src.index()] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u.index()];
            for &v in self.neighbors(u) {
                if dist[v.index()] == UNREACHABLE {
                    dist[v.index()] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Multi-source BFS truncated at `cap` hops: `dist[v]` is the hop
    /// distance from `v` to the *nearest* source, with every distance `≥
    /// cap` (including unreachable) saturated to `cap`. The wave stops
    /// expanding at depth `cap`, so the cost is bounded by the
    /// `cap`-neighborhood of the sources, not the whole graph.
    fn multi_bfs_capped(&self, sources: &[NodeId], cap: u32) -> Vec<u32> {
        let mut dist = vec![cap; self.n];
        if cap == 0 {
            return dist;
        }
        let mut q = VecDeque::new();
        for &s in sources {
            if dist[s.index()] != 0 {
                dist[s.index()] = 0;
                q.push_back(s);
            }
        }
        while let Some(u) = q.pop_front() {
            let du = dist[u.index()];
            if du + 1 >= cap {
                continue;
            }
            for &v in self.neighbors(u) {
                if dist[v.index()] == cap {
                    dist[v.index()] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Bit-parallel BFS from up to 64 sources at once: each source owns a
    /// bit lane in per-node `u64` masks, and one level-synchronous sweep
    /// over the CSR arrays advances all lanes together — `levels × E` word
    /// operations per block instead of `64 × E` scalar visits. `record` is
    /// called once per `(lane, node, level)` the first time a lane reaches
    /// a node (sources at level 0); propagation stops after level `cap`.
    ///
    /// Returns `reached_at_cap`: whether any node was first reached at
    /// level exactly `cap`, i.e. whether nodes *beyond* the cap may exist.
    fn multi_bfs_block<F: FnMut(usize, usize, u32)>(
        &self,
        sources: &[NodeId],
        cap: u32,
        mut record: F,
    ) -> bool {
        debug_assert!(sources.len() <= 64, "one bit lane per source");
        debug_assert!(cap >= 1, "cap 0 cannot store even the sources");
        let n = self.n;
        let mut seen = vec![0u64; n];
        let mut frontier = vec![0u64; n];
        let mut next = vec![0u64; n];
        for (lane, s) in sources.iter().enumerate() {
            let mask = 1u64 << lane;
            seen[s.index()] |= mask;
            frontier[s.index()] |= mask;
            record(lane, s.index(), 0);
        }
        let mut level = 0u32;
        let mut active = true;
        let mut reached_at_cap = false;
        while active && level < cap {
            level += 1;
            for (v, &fm) in frontier.iter().enumerate() {
                if fm != 0 {
                    let (start, end) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
                    for &w in &self.targets[start..end] {
                        next[w.index()] |= fm;
                    }
                }
            }
            active = false;
            for v in 0..n {
                let new = next[v] & !seen[v];
                next[v] = 0;
                frontier[v] = new;
                if new != 0 {
                    seen[v] |= new;
                    active = true;
                    let mut lanes = new;
                    while lanes != 0 {
                        let lane = lanes.trailing_zeros() as usize;
                        lanes &= lanes - 1;
                        record(lane, v, level);
                    }
                }
            }
            if active && level == cap {
                reached_at_cap = true;
            }
        }
        reached_at_cap
    }

    /// Matrix-free diameter: the maximum finite eccentricity, computed by
    /// running the bit-parallel kernel over all sources without storing any
    /// rows. O(n/64 · diam · E) time, O(n) extra space.
    fn diameter_scan(&self) -> u32 {
        if self.n < 2 {
            return 0;
        }
        // Distances are < n, so a cap of n can never truncate a level.
        let cap = self.n as u32;
        let blocks = self.n.div_ceil(64);
        let mut max = 0u32;
        for blk in 0..blocks {
            let lo = blk * 64;
            let hi = (lo + 64).min(self.n);
            let sources: Vec<NodeId> = (lo..hi).map(NodeId::new).collect();
            self.multi_bfs_block(&sources, cap, |_, _, level| {
                if level > max {
                    max = level;
                }
            });
        }
        max
    }

    fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let dist = self.bfs(NodeId::new(0));
        dist.iter().all(|&d| d != UNREACHABLE)
    }
}

/// All-pairs hop distances of a graph, flattened for O(1) lookup.
///
/// The channel reuse constraint (§V-A) asks, for every candidate concurrent
/// transmission pair, whether two nodes are at least `ρ` hops apart; the
/// schedulers query this matrix on their innermost loop.
///
/// This is the *dense* representation — `u32` per cell, `UNREACHABLE` for
/// disconnected pairs. It remains the reference oracle for tests and small
/// graphs; city-scale paths use [`CappedHops`], which answers the same
/// queries from a quarter of the memory (DESIGN.md §16).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopMatrix {
    n: usize,
    dist: Vec<u32>,
}

impl HopMatrix {
    fn from_adjacency(adj: &Adjacency) -> Self {
        let n = adj.n;
        let mut dist = Vec::with_capacity(n * n);
        for src in 0..n {
            dist.extend(adj.bfs(NodeId::new(src)));
        }
        HopMatrix { n, dist }
    }

    /// Builds a matrix from row-major distances (`dist[a · n + b]`).
    ///
    /// Use this to carry externally computed distances — e.g. the global
    /// reuse-graph distances of a whole plant restricted to one shard's
    /// nodes, which per-shard scheduling must use so its reuse decisions
    /// stay conservative with respect to paths through *other* shards.
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != n * n`.
    pub fn from_rows(n: usize, dist: Vec<u32>) -> Self {
        assert_eq!(dist.len(), n * n, "hop matrix needs n² entries");
        HopMatrix { n, dist }
    }

    /// Hop distance between `a` and `b`; [`UNREACHABLE`] when disconnected.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// Whether `a` and `b` are at least `rho` hops apart.
    ///
    /// Unreachable pairs count as infinitely far apart — a pair with no path
    /// in the reuse graph cannot interfere under the hop-based model.
    pub fn at_least(&self, a: NodeId, b: NodeId, rho: u32) -> bool {
        self.hops(a, b) >= rho
    }

    /// The graph diameter: maximum finite hop distance over all pairs
    /// (`λ_R` for the reuse graph in Algorithm 1). Returns 0 for graphs with
    /// fewer than two nodes or no finite pair distances.
    pub fn diameter(&self) -> u32 {
        self.dist.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
    }
}

/// One cell of a [`CappedHops`] table.
trait Cell: Copy + Send + 'static {
    /// Largest cap this cell width can store.
    const LIMIT: u32;
    fn encode(level: u32) -> Self;
    fn decode(self) -> u32;
}

impl Cell for u8 {
    const LIMIT: u32 = u8::MAX as u32;
    fn encode(level: u32) -> Self {
        level as u8
    }
    fn decode(self) -> u32 {
        u32::from(self)
    }
}

impl Cell for u16 {
    const LIMIT: u32 = u16::MAX as u32;
    fn encode(level: u32) -> Self {
        level as u16
    }
    fn decode(self) -> u32 {
        u32::from(self)
    }
}

/// The cell storage of a [`CappedHops`]: one byte per pair when the cap
/// fits in `u8`, two otherwise — 4×/2× smaller than the dense `u32` matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum CappedCells {
    /// Caps up to 255.
    U8(Vec<u8>),
    /// Caps up to 65 535.
    U16(Vec<u16>),
}

/// All-pairs hop distances *saturated at a cap*: every stored distance is
/// `min(d, cap)`, with unreachable pairs stored as `cap`.
///
/// # Conservative saturation (DESIGN.md §16)
///
/// The reuse test (§V-A) only ever asks `hops(a, b) ≥ ρ`. For any queried
/// `ρ ≤ cap` the saturated answer is **exact**: if the true distance is
/// below the cap it is stored verbatim, and if it is at or above the cap
/// (or infinite) the stored `cap ≥ ρ` still answers `true`, exactly as the
/// true distance would. For `ρ > cap` the answer degrades *conservatively*
/// — `at_least` returns `false`, denying reuse that the true distance might
/// have allowed, never granting reuse the true distance would deny.
///
/// When built through the exact-mode constructors (`exact_hops`, or a
/// restricted build whose cap provably exceeds every finite distance of
/// interest), `cap ≥ diameter + 1` holds, which additionally makes
/// `hops()` interchangeable with the dense matrix under any clamp
/// `≤ cap` (the metrics layer clamps at `λ_R + 1`) — schedules computed
/// against a `CappedHops` are byte-identical to the dense path, not merely
/// valid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CappedHops {
    n: usize,
    cap: u32,
    max_finite: u32,
    saturated: bool,
    cells: CappedCells,
}

impl CappedHops {
    fn from_cells<C: Cell>(
        n: usize,
        cap: u32,
        max_finite: u32,
        saturated: bool,
        cells: Vec<C>,
        wrap: fn(Vec<C>) -> CappedCells,
    ) -> Self {
        debug_assert_eq!(cells.len(), n * n);
        CappedHops { n, cap, max_finite, saturated, cells: wrap(cells) }
    }

    fn build_with<C: Cell>(
        adj: &Adjacency,
        cap: u32,
        jobs: usize,
        wrap: fn(Vec<C>) -> CappedCells,
    ) -> Self {
        assert!(cap >= 1 && cap <= C::LIMIT, "cap {cap} does not fit the cell width");
        let n = adj.n;
        if n == 0 {
            return Self::from_cells(0, cap, 0, false, Vec::new(), wrap);
        }
        let blocks = n.div_ceil(64);
        // Each block computes its own saturated rows; index-ordered
        // concatenation makes the result identical for any `jobs`.
        let per: Vec<(Vec<C>, u32, bool)> = parallel_map_with(blocks, jobs, |blk| {
            let lo = blk * 64;
            let hi = (lo + 64).min(n);
            let sources: Vec<NodeId> = (lo..hi).map(NodeId::new).collect();
            let mut rows = vec![C::encode(cap); (hi - lo) * n];
            let mut max = 0u32;
            let reached_at_cap = adj.multi_bfs_block(&sources, cap, |lane, node, level| {
                rows[lane * n + node] = C::encode(level);
                if level > max {
                    max = level;
                }
            });
            (rows, max, reached_at_cap)
        });
        let mut cells = Vec::with_capacity(n * n);
        let mut max_finite = 0u32;
        let mut saturated = false;
        for (rows, max, reached) in per {
            cells.extend_from_slice(&rows);
            max_finite = max_finite.max(max);
            saturated |= reached;
        }
        Self::from_cells(n, cap, max_finite, saturated, cells, wrap)
    }

    fn from_adjacency(adj: &Adjacency, cap: u32, jobs: usize) -> Self {
        if cap <= u8::MAX as u32 {
            Self::build_with::<u8>(adj, cap, jobs, CappedCells::U8)
        } else {
            Self::build_with::<u16>(adj, cap, jobs, CappedCells::U16)
        }
    }

    /// Exact-mode build: tries `u8` with the maximum cap (255); if any node
    /// sits at or beyond that cap, rebuilds as `u16` with cap 65 535, which
    /// no 65 536-node graph can saturate below its true diameter. The
    /// result always satisfies `cap ≥ diameter + 1` (schedule-identical to
    /// the dense matrix) unless the graph's diameter is ≥ 65 535, which the
    /// `NodeId` space cannot quite express anyway.
    fn exact_from_adjacency(adj: &Adjacency, jobs: usize) -> Self {
        let first = Self::build_with::<u8>(adj, u8::MAX as u32, jobs, CappedCells::U8);
        if !first.saturated {
            return first;
        }
        Self::build_with::<u16>(adj, u16::MAX as u32, jobs, CappedCells::U16)
    }

    fn restricted_with<C: Cell>(
        adj: &Adjacency,
        nodes: &[NodeId],
        cap: u32,
        jobs: usize,
        wrap: fn(Vec<C>) -> CappedCells,
    ) -> Self {
        assert!(cap >= 1 && cap <= C::LIMIT, "cap {cap} does not fit the cell width");
        let width = nodes.len();
        if width == 0 {
            return Self::from_cells(0, cap, 0, false, Vec::new(), wrap);
        }
        // Global node index → restricted column, u32::MAX for non-members.
        let mut col_of = vec![u32::MAX; adj.n];
        for (c, node) in nodes.iter().enumerate() {
            col_of[node.index()] = c as u32;
        }
        let blocks = width.div_ceil(64);
        let per: Vec<(Vec<C>, u32, bool)> = parallel_map_with(blocks, jobs, |blk| {
            let lo = blk * 64;
            let hi = (lo + 64).min(width);
            let sources = &nodes[lo..hi];
            let mut rows = vec![C::encode(cap); (hi - lo) * width];
            let mut max = 0u32;
            let reached_at_cap = adj.multi_bfs_block(sources, cap, |lane, node, level| {
                let col = col_of[node];
                if col != u32::MAX {
                    rows[lane * width + col as usize] = C::encode(level);
                    if level > max {
                        max = level;
                    }
                }
            });
            (rows, max, reached_at_cap)
        });
        let mut cells = Vec::with_capacity(width * width);
        let mut max_finite = 0u32;
        let mut saturated = false;
        for (rows, max, reached) in per {
            cells.extend_from_slice(&rows);
            max_finite = max_finite.max(max);
            saturated |= reached;
        }
        Self::from_cells(width, cap, max_finite, saturated, cells, wrap)
    }

    fn restricted_from_adjacency(adj: &Adjacency, nodes: &[NodeId], cap: u32, jobs: usize) -> Self {
        if cap <= u8::MAX as u32 {
            Self::restricted_with::<u8>(adj, nodes, cap, jobs, CappedCells::U8)
        } else {
            Self::restricted_with::<u16>(adj, nodes, cap, jobs, CappedCells::U16)
        }
    }

    /// Saturates a dense matrix into capped form with `cap = diameter + 1`
    /// (so the result is schedule-identical to its source; see the type
    /// docs). Caps beyond 65 535 are clamped to 65 535.
    pub fn from_dense(dense: &HopMatrix) -> Self {
        let diam = dense.diameter();
        let cap = (diam + 1).min(u16::MAX as u32);
        let n = dense.n;
        let encode = |d: u32| if d >= cap { cap } else { d };
        let mut max_finite = 0u32;
        let mut saturated = false;
        for &d in &dense.dist {
            if d != UNREACHABLE {
                max_finite = max_finite.max(d.min(cap));
                saturated |= d >= cap;
            }
        }
        let cells = if cap <= u8::MAX as u32 {
            CappedCells::U8(dense.dist.iter().map(|&d| encode(d) as u8).collect())
        } else {
            CappedCells::U16(dense.dist.iter().map(|&d| encode(d) as u16).collect())
        };
        CappedHops { n, cap, max_finite, saturated, cells }
    }

    /// Number of nodes (rows/columns).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The saturation cap: every stored distance is `min(d, cap)`.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Saturated hop distance between `a` and `b`: the true distance when
    /// it is below [`cap`](Self::cap), else `cap` (unreachable included).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let i = a.index() * self.n + b.index();
        match &self.cells {
            CappedCells::U8(cells) => cells[i].decode(),
            CappedCells::U16(cells) => cells[i].decode(),
        }
    }

    /// Whether `a` and `b` are at least `rho` hops apart.
    ///
    /// Exact for every `rho ≤ cap` (see the conservative-saturation
    /// argument in the type docs); for `rho > cap` this is conservative —
    /// always `false`, denying reuse.
    pub fn at_least(&self, a: NodeId, b: NodeId, rho: u32) -> bool {
        self.hops(a, b) >= rho
    }

    /// Maximum finite distance *observed below the cap* — equal to the true
    /// graph diameter (`λ_R`) whenever [`saturated`](Self::saturated) is
    /// `false`, a lower bound otherwise.
    pub fn diameter(&self) -> u32 {
        self.max_finite
    }

    /// Whether any distance may have been truncated: some node was first
    /// reached at exactly `cap` hops, so pairs beyond the cap may exist.
    /// When `false`, `cap ≥ diameter + 1` and every finite distance is
    /// stored exactly.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Bytes used by the cell storage.
    pub fn bytes(&self) -> usize {
        match &self.cells {
            CappedCells::U8(cells) => cells.len(),
            CappedCells::U16(cells) => cells.len() * 2,
        }
    }
}

/// Lazily computed, cached graph diameter. Transparent to comparison,
/// hashing-by-value, and serde (serializes as null, deserializes empty) so
/// the graphs stay plain value types; sound to cache because the graphs are
/// immutable after construction.
#[derive(Debug, Default, Clone)]
struct DiamCache(OnceLock<u32>);

impl PartialEq for DiamCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for DiamCache {}

impl Serialize for DiamCache {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for DiamCache {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(DiamCache::default())
    }
}

macro_rules! graph_common {
    ($ty:ident) => {
        impl $ty {
            /// Number of nodes.
            pub fn node_count(&self) -> usize {
                self.adj.n
            }

            /// Number of (undirected) edges.
            pub fn edge_count(&self) -> usize {
                self.adj.edge_count()
            }

            /// Whether the bidirectional edge `ab` exists.
            pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
                self.adj.has_edge(a, b)
            }

            /// Neighbors of `a`, sorted ascending.
            pub fn neighbors(&self, a: NodeId) -> &[NodeId] {
                self.adj.neighbors(a)
            }

            /// Degree (neighbor count) of `a`.
            pub fn degree(&self, a: NodeId) -> usize {
                self.adj.degree(a)
            }

            /// Whether every node can reach every other node.
            pub fn is_connected(&self) -> bool {
                self.adj.is_connected()
            }

            /// All-pairs hop distances, dense (`u32` per cell). The
            /// small-graph oracle; city-scale callers should prefer
            /// [`capped_hops`](Self::capped_hops) or
            /// [`exact_hops`](Self::exact_hops).
            pub fn hop_matrix(&self) -> HopMatrix {
                HopMatrix::from_adjacency(&self.adj)
            }

            /// All-pairs distances saturated at `cap` (see [`CappedHops`]),
            /// built by the bit-parallel multi-source BFS on up to `jobs`
            /// workers (`0` = all cores). Byte-identical for any `jobs`.
            pub fn capped_hops(&self, cap: u32, jobs: usize) -> CappedHops {
                CappedHops::from_adjacency(&self.adj, cap, jobs)
            }

            /// All-pairs distances with an automatically chosen cap that
            /// provably exceeds the diameter, making the result
            /// schedule-identical to the dense matrix at a quarter (u8) or
            /// half (u16) the memory. `jobs = 0` uses all cores.
            pub fn exact_hops(&self, jobs: usize) -> CappedHops {
                CappedHops::exact_from_adjacency(&self.adj, jobs)
            }

            /// Distances measured on the *whole* graph but recorded only
            /// between the given `nodes` (row/column `i` is `nodes[i]`),
            /// saturated at `cap`. This is the shard-extraction primitive:
            /// per-shard scheduling needs global reuse distances restricted
            /// to the shard's members.
            pub fn capped_hops_restricted(
                &self,
                nodes: &[NodeId],
                cap: u32,
                jobs: usize,
            ) -> CappedHops {
                CappedHops::restricted_from_adjacency(&self.adj, nodes, cap, jobs)
            }

            /// Graph diameter: the maximum finite shortest-path length.
            /// Matrix-free (eccentricity scan) and cached — the graphs are
            /// immutable, so the first call pays and the rest are loads.
            pub fn diameter(&self) -> u32 {
                *self.diam.0.get_or_init(|| self.adj.diameter_scan())
            }

            /// Single-source BFS hop distances from `src`
            /// ([`UNREACHABLE`] marks unreachable nodes).
            pub fn bfs_from(&self, src: NodeId) -> Vec<u32> {
                self.adj.bfs(src)
            }

            /// Hop distance from every node to its nearest node in
            /// `sources`, saturated at `cap` (distances `≥ cap` and
            /// unreachable both read `cap`). The search is truncated at
            /// depth `cap`, so it only visits the sources' neighborhood.
            pub fn multi_bfs_capped(&self, sources: &[NodeId], cap: u32) -> Vec<u32> {
                self.adj.multi_bfs_capped(sources, cap)
            }
        }
    };
}

/// The communication graph `G_c(V, E)` used to construct routes.
///
/// A bidirectional edge `uv ∈ E` exists iff `PRR(u→v) ≥ PRR_t` and
/// `PRR(v→u) ≥ PRR_t` on **all** channels in use — bidirectionality supports
/// the acknowledgement, and channel hopping forces reliability on every
/// channel the link will visit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommGraph {
    adj: Adjacency,
    diam: DiamCache,
}

graph_common!(CommGraph);

impl CommGraph {
    pub(crate) fn from_topology(topo: &Topology, channels: &ChannelSet, prr_t: Prr) -> Self {
        let n = topo.node_count();
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let (na, nb) = (NodeId::new(a), NodeId::new(b));
                let fwd = topo.min_prr_over(DirectedLink::new(na, nb), channels);
                let rev = topo.min_prr_over(DirectedLink::new(nb, na), channels);
                if fwd.value() >= prr_t.value() && rev.value() >= prr_t.value() {
                    pairs.push((na, nb));
                }
            }
        }
        CommGraph { adj: Adjacency::from_pairs(n, pairs), diam: DiamCache::default() }
    }

    /// Builds a communication graph directly from an undirected edge list
    /// (for hand-crafted test networks).
    pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Self {
        CommGraph {
            adj: Adjacency::from_pairs(node_count, edges.iter().copied()),
            diam: DiamCache::default(),
        }
    }

    /// Selects `k` access points: well-connected nodes ("nodes with a high
    /// number of neighbors", §VII) that are also *spread out* — real
    /// deployments place access points apart so their wireless
    /// neighbourhoods overlap as little as possible.
    ///
    /// The first pick is the highest-degree node; each further pick is the
    /// highest-degree node at least `⌈diameter/2⌉` hops from every previous
    /// pick, relaxing the distance requirement one hop at a time when no
    /// node qualifies. Ties break toward lower node ids for determinism.
    ///
    /// Matrix-free: only the picked nodes' BFS rows are materialized (at
    /// most `k` rows), never the full n² matrix.
    pub fn select_access_points(&self, k: usize) -> Vec<NodeId> {
        let mut by_degree: Vec<NodeId> = (0..self.node_count()).map(NodeId::new).collect();
        by_degree.sort_by_key(|&id| (std::cmp::Reverse(self.degree(id)), id.index()));
        if k <= 1 || by_degree.len() <= k {
            by_degree.truncate(k);
            return by_degree;
        }
        let mut picked = vec![by_degree[0]];
        // dist_rows[i] is the BFS row of picked[i]; distances are symmetric,
        // so row[candidate] == hops(candidate, picked[i]).
        let mut dist_rows = vec![self.bfs_from(by_degree[0])];
        let mut min_sep = self.diameter().div_ceil(2).max(1);
        while picked.len() < k {
            let candidate = by_degree.iter().copied().find(|&id| {
                !picked.contains(&id) && dist_rows.iter().all(|row| row[id.index()] >= min_sep)
            });
            match candidate {
                Some(id) => {
                    picked.push(id);
                    dist_rows.push(self.bfs_from(id));
                }
                None if min_sep > 1 => min_sep -= 1,
                None => {
                    // fully relaxed: fall back to plain degree order
                    let next = by_degree
                        .iter()
                        .copied()
                        .find(|id| !picked.contains(id))
                        .expect("k < node_count");
                    picked.push(next);
                    dist_rows.push(self.bfs_from(next));
                }
            }
        }
        picked
    }
}

/// The channel reuse graph `G_R(V, E)` used to estimate interference.
///
/// A bidirectional edge `uv ∈ E` exists iff **any** channel in use has
/// `PRR(u→v) > 0` or `PRR(v→u) > 0`: if even occasional packets get through,
/// the pair can interfere, so hop distance on this graph is the conservative
/// proxy for interference attenuation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseGraph {
    adj: Adjacency,
    diam: DiamCache,
}

graph_common!(ReuseGraph);

impl ReuseGraph {
    pub(crate) fn from_topology(topo: &Topology, channels: &ChannelSet) -> Self {
        let n = topo.node_count();
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let (na, nb) = (NodeId::new(a), NodeId::new(b));
                if topo.max_pair_prr_over(na, nb, channels).is_positive() {
                    pairs.push((na, nb));
                }
            }
        }
        ReuseGraph { adj: Adjacency::from_pairs(n, pairs), diam: DiamCache::default() }
    }

    /// Builds a reuse graph directly from an undirected edge list (for
    /// hand-crafted test networks).
    pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Self {
        ReuseGraph {
            adj: Adjacency::from_pairs(node_count, edges.iter().copied()),
            diam: DiamCache::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChannelId, Position};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Path graph 0 - 1 - 2 - 3.
    fn path4() -> ReuseGraph {
        ReuseGraph::from_edges(4, &[(n(0), n(1)), (n(1), n(2)), (n(2), n(3))])
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = path4();
        let hm = g.hop_matrix();
        assert_eq!(hm.hops(n(0), n(0)), 0);
        assert_eq!(hm.hops(n(0), n(1)), 1);
        assert_eq!(hm.hops(n(0), n(3)), 3);
        assert_eq!(hm.hops(n(3), n(0)), 3);
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    fn at_least_semantics() {
        let hm = path4().hop_matrix();
        assert!(hm.at_least(n(0), n(3), 3));
        assert!(hm.at_least(n(0), n(3), 2));
        assert!(!hm.at_least(n(0), n(1), 2));
        // zero hops: same node fails any rho >= 1
        assert!(!hm.at_least(n(2), n(2), 1));
    }

    #[test]
    fn unreachable_counts_as_infinitely_far() {
        let g = ReuseGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        let hm = g.hop_matrix();
        assert_eq!(hm.hops(n(0), n(2)), UNREACHABLE);
        assert!(hm.at_least(n(0), n(2), 1_000));
        assert!(!g.is_connected());
        // diameter ignores unreachable pairs
        assert_eq!(hm.diameter(), 1);
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g0 = ReuseGraph::from_edges(0, &[]);
        assert!(g0.is_connected());
        assert_eq!(g0.diameter(), 0);
        let g1 = ReuseGraph::from_edges(1, &[]);
        assert!(g1.is_connected());
        assert_eq!(g1.diameter(), 0);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let g = ReuseGraph::from_edges(2, &[(n(0), n(1)), (n(1), n(0)), (n(0), n(1))]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(n(0)), 1);
    }

    #[test]
    fn neighbors_are_sorted_and_csr_consistent() {
        let g =
            ReuseGraph::from_edges(5, &[(n(3), n(0)), (n(3), n(4)), (n(3), n(1)), (n(0), n(4))]);
        assert_eq!(g.neighbors(n(3)), &[n(0), n(1), n(4)]);
        assert_eq!(g.neighbors(n(0)), &[n(3), n(4)]);
        assert_eq!(g.neighbors(n(2)), &[] as &[NodeId]);
        assert!(g.has_edge(n(4), n(0)));
        assert!(!g.has_edge(n(1), n(4)));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn capped_hops_exact_matches_dense_on_a_path() {
        let g = path4();
        let dense = g.hop_matrix();
        let capped = g.exact_hops(1);
        assert_eq!(capped.cap(), 255);
        assert!(!capped.saturated());
        assert_eq!(capped.diameter(), dense.diameter());
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(capped.hops(n(a), n(b)), dense.hops(n(a), n(b)));
                for rho in 0..6 {
                    assert_eq!(
                        capped.at_least(n(a), n(b), rho),
                        dense.at_least(n(a), n(b), rho),
                        "({a},{b}) rho={rho}"
                    );
                }
            }
        }
    }

    #[test]
    fn capped_hops_saturates_conservatively() {
        // path of 8 nodes, cap 3: distances >= 3 all read 3
        let edges: Vec<_> = (0..7).map(|i| (n(i), n(i + 1))).collect();
        let g = ReuseGraph::from_edges(8, &edges);
        let capped = g.capped_hops(3, 1);
        assert!(capped.saturated());
        assert_eq!(capped.hops(n(0), n(2)), 2); // exact below cap
        assert_eq!(capped.hops(n(0), n(3)), 3); // at cap: exact
        assert_eq!(capped.hops(n(0), n(7)), 3); // beyond cap: saturated
                                                // rho <= cap stays exact
        assert!(capped.at_least(n(0), n(3), 3));
        assert!(!capped.at_least(n(0), n(2), 3));
        // rho > cap: conservative false (reuse denied) even though the
        // true distance (7) would have allowed it
        assert!(!capped.at_least(n(0), n(7), 4));
    }

    #[test]
    fn capped_hops_treats_unreachable_as_cap() {
        let g = ReuseGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        let capped = g.exact_hops(1);
        assert_eq!(capped.hops(n(0), n(2)), capped.cap());
        assert!(capped.at_least(n(0), n(2), capped.cap()));
        assert_eq!(capped.diameter(), 1);
        assert!(!capped.saturated());
    }

    #[test]
    fn capped_hops_from_dense_round_trips() {
        let g = path4();
        let dense = g.hop_matrix();
        let via_dense = CappedHops::from_dense(&dense);
        let direct = g.exact_hops(1);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    via_dense.hops(n(a), n(b)).min(via_dense.cap()),
                    direct.hops(n(a), n(b)).min(via_dense.cap())
                );
            }
        }
        assert_eq!(via_dense.diameter(), direct.diameter());
    }

    #[test]
    fn restricted_extraction_matches_dense_restriction() {
        // star + chain so the subset's pairwise paths run through
        // non-member nodes
        let g = ReuseGraph::from_edges(
            6,
            &[(n(2), n(0)), (n(2), n(1)), (n(2), n(3)), (n(2), n(4)), (n(4), n(5))],
        );
        let dense = g.hop_matrix();
        let subset = [n(0), n(3), n(5)];
        let capped = g.capped_hops_restricted(&subset, 10, 1);
        assert_eq!(capped.node_count(), 3);
        for (i, &a) in subset.iter().enumerate() {
            for (j, &b) in subset.iter().enumerate() {
                assert_eq!(capped.hops(n(i), n(j)), dense.hops(a, b), "{a:?}->{b:?}");
            }
        }
    }

    #[test]
    fn multi_bfs_capped_truncates_at_depth() {
        let edges: Vec<_> = (0..7).map(|i| (n(i), n(i + 1))).collect();
        let g = ReuseGraph::from_edges(8, &edges);
        let dist = g.multi_bfs_capped(&[n(0), n(7)], 3);
        assert_eq!(dist[n(0).index()], 0);
        assert_eq!(dist[n(2).index()], 2);
        assert_eq!(dist[n(5).index()], 2); // nearest source is 7
        assert_eq!(dist[n(3).index()], 3); // at cap
        assert_eq!(dist[n(4).index()], 3); // true distance 3 from node 7
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        // 130 nodes -> 3 source blocks, enough to exercise block stitching
        let edges: Vec<_> = (0..129).map(|i| (n(i), n(i + 1))).collect();
        let g = ReuseGraph::from_edges(130, &edges);
        let seq = g.capped_hops(9, 1);
        let par = g.capped_hops(9, 4);
        assert_eq!(seq, par);
        let seq_exact = g.exact_hops(1);
        let par_exact = g.exact_hops(4);
        assert_eq!(seq_exact, par_exact);
    }

    #[test]
    fn access_point_selection_prefers_high_degree_spread_apart() {
        // star around node 2, plus a pendant chain: 2 is the hub; the
        // second AP must be well-connected *and* far from the hub.
        let g = CommGraph::from_edges(
            6,
            &[(n(2), n(0)), (n(2), n(1)), (n(2), n(3)), (n(2), n(4)), (n(4), n(5))],
        );
        let aps = g.select_access_points(2);
        assert_eq!(aps[0], n(2)); // degree 4 hub
                                  // diameter 3 ⇒ separation ⌈3/2⌉ = 2: node 5 is the only node 2 hops
                                  // from the hub with the best degree among those (degree 1), node 4
                                  // (degree 2) is only 1 hop away
        assert_eq!(aps[1], n(5));
    }

    #[test]
    fn access_points_on_a_long_path_spread_out() {
        let edges: Vec<_> = (0..9).map(|i| (n(i), n(i + 1))).collect();
        let g = CommGraph::from_edges(10, &edges);
        let aps = g.select_access_points(2);
        let hm = g.hop_matrix();
        assert!(hm.hops(aps[0], aps[1]) >= 5, "APs {aps:?} too close");
    }

    #[test]
    fn access_point_ties_break_by_id() {
        let g = CommGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        let aps = g.select_access_points(2);
        assert_eq!(aps, vec![n(0), n(1)]);
    }

    fn mini_topology() -> Topology {
        // three nodes in a row, 10 m apart
        let mut t = Topology::new(
            "mini",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(10.0, 0.0, 0.0),
                Position::new(20.0, 0.0, 0.0),
            ],
        );
        let (c11, c12) = (ChannelId::new(11).unwrap(), ChannelId::new(12).unwrap());
        // adjacent pairs: strong on both channels, both directions
        for (a, b) in [(0, 1), (1, 2)] {
            for ch in [c11, c12] {
                t.set_prr(n(a), n(b), ch, Prr::new(0.95).unwrap()).unwrap();
                t.set_prr(n(b), n(a), ch, Prr::new(0.95).unwrap()).unwrap();
            }
        }
        // far pair 0-2: weak on one channel, one direction only
        t.set_prr(n(0), n(2), c11, Prr::new(0.1).unwrap()).unwrap();
        t
    }

    #[test]
    fn comm_graph_requires_threshold_on_all_channels_both_ways() {
        let t = mini_topology();
        let chans = ChannelId::range(11, 12).unwrap();
        let g = t.comm_graph(&chans, Prr::new(0.9).unwrap());
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(2)));
        assert!(!g.has_edge(n(0), n(2))); // 0.1 < 0.9, and missing channels
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn comm_graph_drops_link_weak_on_one_channel() {
        let mut t = mini_topology();
        let c12 = ChannelId::new(12).unwrap();
        // degrade one direction on one channel below threshold
        t.set_prr(n(0), n(1), c12, Prr::new(0.5).unwrap()).unwrap();
        let chans = ChannelId::range(11, 12).unwrap();
        let g = t.comm_graph(&chans, Prr::new(0.9).unwrap());
        assert!(!g.has_edge(n(0), n(1)));
        // but with only channel 11 in use the edge qualifies again
        let g11 = t.comm_graph(&ChannelId::range(11, 11).unwrap(), Prr::new(0.9).unwrap());
        assert!(g11.has_edge(n(0), n(1)));
    }

    #[test]
    fn reuse_graph_includes_any_positive_prr() {
        let t = mini_topology();
        let chans = ChannelId::range(11, 12).unwrap();
        let g = t.reuse_graph(&chans);
        // 0-2 has PRR 0.1 on ch11 in one direction: edge exists
        assert!(g.has_edge(n(0), n(2)));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn reuse_graph_is_superset_of_comm_graph() {
        let t = mini_topology();
        let chans = ChannelId::range(11, 12).unwrap();
        let comm = t.comm_graph(&chans, Prr::new(0.9).unwrap());
        let reuse = t.reuse_graph(&chans);
        for a in 0..3 {
            for b in (a + 1)..3 {
                if comm.has_edge(n(a), n(b)) {
                    assert!(reuse.has_edge(n(a), n(b)));
                }
            }
        }
    }

    #[test]
    fn graph_serde_round_trips_without_the_cache() {
        let g = path4();
        let _ = g.diameter(); // warm the cache before serializing
        let v = g.to_value();
        let back = ReuseGraph::from_value(&v).unwrap();
        assert_eq!(g, back);
        assert_eq!(back.diameter(), 3); // recomputed lazily
    }
}
