//! The two graphs the network manager derives from PRR measurements:
//! the *communication graph* (for routing) and the *channel reuse graph*
//! (for interference estimation), plus all-pairs hop distances.

use crate::{ChannelSet, DirectedLink, NodeId, Prr, Topology};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Hop distance that stands for "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Undirected adjacency shared by both graph flavors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Adjacency {
    n: usize,
    neighbors: Vec<Vec<NodeId>>,
}

impl Adjacency {
    fn new(n: usize) -> Self {
        Adjacency { n, neighbors: vec![Vec::new(); n] }
    }

    fn add_edge(&mut self, a: NodeId, b: NodeId) {
        debug_assert!(a != b, "self loops are not meaningful");
        if !self.neighbors[a.index()].contains(&b) {
            self.neighbors[a.index()].push(b);
            self.neighbors[b.index()].push(a);
        }
    }

    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors[a.index()].contains(&b)
    }

    fn degree(&self, a: NodeId) -> usize {
        self.neighbors[a.index()].len()
    }

    fn edge_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Single-source BFS hop distances.
    fn bfs(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![UNREACHABLE; self.n];
        let mut q = VecDeque::new();
        dist[src.index()] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u.index()];
            for &v in &self.neighbors[u.index()] {
                if dist[v.index()] == UNREACHABLE {
                    dist[v.index()] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let dist = self.bfs(NodeId::new(0));
        dist.iter().all(|&d| d != UNREACHABLE)
    }
}

/// All-pairs hop distances of a graph, flattened for O(1) lookup.
///
/// The channel reuse constraint (§V-A) asks, for every candidate concurrent
/// transmission pair, whether two nodes are at least `ρ` hops apart; the
/// schedulers query this matrix on their innermost loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopMatrix {
    n: usize,
    dist: Vec<u32>,
}

impl HopMatrix {
    fn from_adjacency(adj: &Adjacency) -> Self {
        let n = adj.n;
        let mut dist = Vec::with_capacity(n * n);
        for src in 0..n {
            dist.extend(adj.bfs(NodeId::new(src)));
        }
        HopMatrix { n, dist }
    }

    /// Builds a matrix from row-major distances (`dist[a · n + b]`).
    ///
    /// Use this to carry externally computed distances — e.g. the global
    /// reuse-graph distances of a whole plant restricted to one shard's
    /// nodes, which per-shard scheduling must use so its reuse decisions
    /// stay conservative with respect to paths through *other* shards.
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != n * n`.
    pub fn from_rows(n: usize, dist: Vec<u32>) -> Self {
        assert_eq!(dist.len(), n * n, "hop matrix needs n² entries");
        HopMatrix { n, dist }
    }

    /// Hop distance between `a` and `b`; [`UNREACHABLE`] when disconnected.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// Whether `a` and `b` are at least `rho` hops apart.
    ///
    /// Unreachable pairs count as infinitely far apart — a pair with no path
    /// in the reuse graph cannot interfere under the hop-based model.
    pub fn at_least(&self, a: NodeId, b: NodeId, rho: u32) -> bool {
        self.hops(a, b) >= rho
    }

    /// The graph diameter: maximum finite hop distance over all pairs
    /// (`λ_R` for the reuse graph in Algorithm 1). Returns 0 for graphs with
    /// fewer than two nodes or no finite pair distances.
    pub fn diameter(&self) -> u32 {
        self.dist.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
    }
}

macro_rules! graph_common {
    ($ty:ident) => {
        impl $ty {
            /// Number of nodes.
            pub fn node_count(&self) -> usize {
                self.adj.n
            }

            /// Number of (undirected) edges.
            pub fn edge_count(&self) -> usize {
                self.adj.edge_count()
            }

            /// Whether the bidirectional edge `ab` exists.
            pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
                self.adj.has_edge(a, b)
            }

            /// Neighbors of `a`.
            pub fn neighbors(&self, a: NodeId) -> &[NodeId] {
                &self.adj.neighbors[a.index()]
            }

            /// Degree (neighbor count) of `a`.
            pub fn degree(&self, a: NodeId) -> usize {
                self.adj.degree(a)
            }

            /// Whether every node can reach every other node.
            pub fn is_connected(&self) -> bool {
                self.adj.is_connected()
            }

            /// All-pairs hop distances.
            pub fn hop_matrix(&self) -> HopMatrix {
                HopMatrix::from_adjacency(&self.adj)
            }

            /// Graph diameter: the maximum finite shortest-path length.
            pub fn diameter(&self) -> u32 {
                self.hop_matrix().diameter()
            }

            /// Single-source BFS hop distances from `src`
            /// ([`UNREACHABLE`] marks unreachable nodes).
            pub fn bfs_from(&self, src: NodeId) -> Vec<u32> {
                self.adj.bfs(src)
            }
        }
    };
}

/// The communication graph `G_c(V, E)` used to construct routes.
///
/// A bidirectional edge `uv ∈ E` exists iff `PRR(u→v) ≥ PRR_t` and
/// `PRR(v→u) ≥ PRR_t` on **all** channels in use — bidirectionality supports
/// the acknowledgement, and channel hopping forces reliability on every
/// channel the link will visit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommGraph {
    adj: Adjacency,
}

graph_common!(CommGraph);

impl CommGraph {
    pub(crate) fn from_topology(topo: &Topology, channels: &ChannelSet, prr_t: Prr) -> Self {
        let n = topo.node_count();
        let mut adj = Adjacency::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                let (na, nb) = (NodeId::new(a), NodeId::new(b));
                let fwd = topo.min_prr_over(DirectedLink::new(na, nb), channels);
                let rev = topo.min_prr_over(DirectedLink::new(nb, na), channels);
                if fwd.value() >= prr_t.value() && rev.value() >= prr_t.value() {
                    adj.add_edge(na, nb);
                }
            }
        }
        CommGraph { adj }
    }

    /// Builds a communication graph directly from an undirected edge list
    /// (for hand-crafted test networks).
    pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adj = Adjacency::new(node_count);
        for &(a, b) in edges {
            adj.add_edge(a, b);
        }
        CommGraph { adj }
    }

    /// Selects `k` access points: well-connected nodes ("nodes with a high
    /// number of neighbors", §VII) that are also *spread out* — real
    /// deployments place access points apart so their wireless
    /// neighbourhoods overlap as little as possible.
    ///
    /// The first pick is the highest-degree node; each further pick is the
    /// highest-degree node at least `⌈diameter/2⌉` hops from every previous
    /// pick, relaxing the distance requirement one hop at a time when no
    /// node qualifies. Ties break toward lower node ids for determinism.
    pub fn select_access_points(&self, k: usize) -> Vec<NodeId> {
        let mut by_degree: Vec<NodeId> = (0..self.node_count()).map(NodeId::new).collect();
        by_degree.sort_by_key(|&id| (std::cmp::Reverse(self.degree(id)), id.index()));
        if k <= 1 || by_degree.len() <= k {
            by_degree.truncate(k);
            return by_degree;
        }
        let hops = self.hop_matrix();
        let mut picked = vec![by_degree[0]];
        let mut min_sep = hops.diameter().div_ceil(2).max(1);
        while picked.len() < k {
            let candidate = by_degree.iter().copied().find(|&id| {
                !picked.contains(&id) && picked.iter().all(|&p| hops.at_least(id, p, min_sep))
            });
            match candidate {
                Some(id) => picked.push(id),
                None if min_sep > 1 => min_sep -= 1,
                None => {
                    // fully relaxed: fall back to plain degree order
                    let next = by_degree
                        .iter()
                        .copied()
                        .find(|id| !picked.contains(id))
                        .expect("k < node_count");
                    picked.push(next);
                }
            }
        }
        picked
    }
}

/// The channel reuse graph `G_R(V, E)` used to estimate interference.
///
/// A bidirectional edge `uv ∈ E` exists iff **any** channel in use has
/// `PRR(u→v) > 0` or `PRR(v→u) > 0`: if even occasional packets get through,
/// the pair can interfere, so hop distance on this graph is the conservative
/// proxy for interference attenuation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseGraph {
    adj: Adjacency,
}

graph_common!(ReuseGraph);

impl ReuseGraph {
    pub(crate) fn from_topology(topo: &Topology, channels: &ChannelSet) -> Self {
        let n = topo.node_count();
        let mut adj = Adjacency::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                let (na, nb) = (NodeId::new(a), NodeId::new(b));
                if topo.max_pair_prr_over(na, nb, channels).is_positive() {
                    adj.add_edge(na, nb);
                }
            }
        }
        ReuseGraph { adj }
    }

    /// Builds a reuse graph directly from an undirected edge list (for
    /// hand-crafted test networks).
    pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adj = Adjacency::new(node_count);
        for &(a, b) in edges {
            adj.add_edge(a, b);
        }
        ReuseGraph { adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChannelId, Position};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Path graph 0 - 1 - 2 - 3.
    fn path4() -> ReuseGraph {
        ReuseGraph::from_edges(4, &[(n(0), n(1)), (n(1), n(2)), (n(2), n(3))])
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = path4();
        let hm = g.hop_matrix();
        assert_eq!(hm.hops(n(0), n(0)), 0);
        assert_eq!(hm.hops(n(0), n(1)), 1);
        assert_eq!(hm.hops(n(0), n(3)), 3);
        assert_eq!(hm.hops(n(3), n(0)), 3);
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    fn at_least_semantics() {
        let hm = path4().hop_matrix();
        assert!(hm.at_least(n(0), n(3), 3));
        assert!(hm.at_least(n(0), n(3), 2));
        assert!(!hm.at_least(n(0), n(1), 2));
        // zero hops: same node fails any rho >= 1
        assert!(!hm.at_least(n(2), n(2), 1));
    }

    #[test]
    fn unreachable_counts_as_infinitely_far() {
        let g = ReuseGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        let hm = g.hop_matrix();
        assert_eq!(hm.hops(n(0), n(2)), UNREACHABLE);
        assert!(hm.at_least(n(0), n(2), 1_000));
        assert!(!g.is_connected());
        // diameter ignores unreachable pairs
        assert_eq!(hm.diameter(), 1);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g0 = ReuseGraph::from_edges(0, &[]);
        assert!(g0.is_connected());
        assert_eq!(g0.diameter(), 0);
        let g1 = ReuseGraph::from_edges(1, &[]);
        assert!(g1.is_connected());
        assert_eq!(g1.diameter(), 0);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let g = ReuseGraph::from_edges(2, &[(n(0), n(1)), (n(1), n(0)), (n(0), n(1))]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(n(0)), 1);
    }

    #[test]
    fn access_point_selection_prefers_high_degree_spread_apart() {
        // star around node 2, plus a pendant chain: 2 is the hub; the
        // second AP must be well-connected *and* far from the hub.
        let g = CommGraph::from_edges(
            6,
            &[(n(2), n(0)), (n(2), n(1)), (n(2), n(3)), (n(2), n(4)), (n(4), n(5))],
        );
        let aps = g.select_access_points(2);
        assert_eq!(aps[0], n(2)); // degree 4 hub
                                  // diameter 3 ⇒ separation ⌈3/2⌉ = 2: node 5 is the only node 2 hops
                                  // from the hub with the best degree among those (degree 1), node 4
                                  // (degree 2) is only 1 hop away
        assert_eq!(aps[1], n(5));
    }

    #[test]
    fn access_points_on_a_long_path_spread_out() {
        let edges: Vec<_> = (0..9).map(|i| (n(i), n(i + 1))).collect();
        let g = CommGraph::from_edges(10, &edges);
        let aps = g.select_access_points(2);
        let hm = g.hop_matrix();
        assert!(hm.hops(aps[0], aps[1]) >= 5, "APs {aps:?} too close");
    }

    #[test]
    fn access_point_ties_break_by_id() {
        let g = CommGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        let aps = g.select_access_points(2);
        assert_eq!(aps, vec![n(0), n(1)]);
    }

    fn mini_topology() -> Topology {
        // three nodes in a row, 10 m apart
        let mut t = Topology::new(
            "mini",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(10.0, 0.0, 0.0),
                Position::new(20.0, 0.0, 0.0),
            ],
        );
        let (c11, c12) = (ChannelId::new(11).unwrap(), ChannelId::new(12).unwrap());
        // adjacent pairs: strong on both channels, both directions
        for (a, b) in [(0, 1), (1, 2)] {
            for ch in [c11, c12] {
                t.set_prr(n(a), n(b), ch, Prr::new(0.95).unwrap()).unwrap();
                t.set_prr(n(b), n(a), ch, Prr::new(0.95).unwrap()).unwrap();
            }
        }
        // far pair 0-2: weak on one channel, one direction only
        t.set_prr(n(0), n(2), c11, Prr::new(0.1).unwrap()).unwrap();
        t
    }

    #[test]
    fn comm_graph_requires_threshold_on_all_channels_both_ways() {
        let t = mini_topology();
        let chans = ChannelId::range(11, 12).unwrap();
        let g = t.comm_graph(&chans, Prr::new(0.9).unwrap());
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(2)));
        assert!(!g.has_edge(n(0), n(2))); // 0.1 < 0.9, and missing channels
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn comm_graph_drops_link_weak_on_one_channel() {
        let mut t = mini_topology();
        let c12 = ChannelId::new(12).unwrap();
        // degrade one direction on one channel below threshold
        t.set_prr(n(0), n(1), c12, Prr::new(0.5).unwrap()).unwrap();
        let chans = ChannelId::range(11, 12).unwrap();
        let g = t.comm_graph(&chans, Prr::new(0.9).unwrap());
        assert!(!g.has_edge(n(0), n(1)));
        // but with only channel 11 in use the edge qualifies again
        let g11 = t.comm_graph(&ChannelId::range(11, 11).unwrap(), Prr::new(0.9).unwrap());
        assert!(g11.has_edge(n(0), n(1)));
    }

    #[test]
    fn reuse_graph_includes_any_positive_prr() {
        let t = mini_topology();
        let chans = ChannelId::range(11, 12).unwrap();
        let g = t.reuse_graph(&chans);
        // 0-2 has PRR 0.1 on ch11 in one direction: edge exists
        assert!(g.has_edge(n(0), n(2)));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn reuse_graph_is_superset_of_comm_graph() {
        let t = mini_topology();
        let chans = ChannelId::range(11, 12).unwrap();
        let comm = t.comm_graph(&chans, Prr::new(0.9).unwrap());
        let reuse = t.reuse_graph(&chans);
        for a in 0..3 {
            for b in (a + 1)..3 {
                if comm.has_edge(n(a), n(b)) {
                    assert!(reuse.has_edge(n(a), n(b)));
                }
            }
        }
    }
}
