//! Seeded synthetic reconstructions of the paper's two physical testbeds.
//!
//! The paper evaluates on PRR tables collected from the 80-node Indriya
//! testbed (National University of Singapore) and the 60-node WUSTL testbed
//! (three floors of Bryan Hall). Those traces are not public, so this module
//! synthesizes topologies with the same macroscopic structure — node count,
//! floor count, multi-hop communication graph, denser channel-reuse graph —
//! from the indoor [`propagation`](crate::propagation) model. Every generator
//! takes an explicit seed and is fully deterministic.
//!
//! Generated topologies are *validated*: the communication graph over all 16
//! channels at `PRR_t = 0.9` must be connected (the physical testbeds were);
//! if a seed produces a disconnected graph, deterministic retry seeds are
//! derived until one passes.

use crate::propagation::PropagationModel;
use crate::{ChannelId, NodeId, Position, Prr, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Layout and scale of a synthetic multi-floor testbed.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedConfig {
    /// Topology name recorded on the generated [`Topology`].
    pub name: String,
    /// Number of building floors.
    pub floors: usize,
    /// Nodes placed on each floor (length must equal `floors`).
    pub nodes_per_floor: Vec<usize>,
    /// Floor extent east-west, in meters.
    pub width_m: f64,
    /// Floor extent north-south, in meters.
    pub depth_m: f64,
    /// Radio and environment model.
    pub model: PropagationModel,
    /// Standard deviation of the per-channel quality offset (dB), modelling
    /// channels that are systematically better or worse building-wide.
    pub channel_offset_sigma_db: f64,
}

impl TestbedConfig {
    /// Configuration mirroring the 80-node Indriya testbed: three large
    /// laboratory floors.
    pub fn indriya() -> Self {
        TestbedConfig {
            name: "indriya".to_string(),
            floors: 3,
            nodes_per_floor: vec![27, 27, 26],
            width_m: 75.0,
            depth_m: 35.0,
            model: PropagationModel::default(),
            channel_offset_sigma_db: 1.5,
        }
    }

    /// Configuration mirroring the 60-node WUSTL testbed: three office
    /// floors of a smaller building.
    pub fn wustl() -> Self {
        TestbedConfig {
            name: "wustl".to_string(),
            floors: 3,
            nodes_per_floor: vec![20, 20, 20],
            width_m: 40.0,
            depth_m: 20.0,
            model: PropagationModel::default(),
            channel_offset_sigma_db: 1.5,
        }
    }

    /// Total node count across floors.
    pub fn node_count(&self) -> usize {
        self.nodes_per_floor.iter().sum()
    }
}

/// Generates the Indriya-like 80-node topology for a seed.
pub fn indriya(seed: u64) -> Topology {
    generate(&TestbedConfig::indriya(), seed)
}

/// Generates the WUSTL-like 60-node topology for a seed.
pub fn wustl(seed: u64) -> Topology {
    generate(&TestbedConfig::wustl(), seed)
}

/// Generates a validated topology from a configuration and seed.
///
/// Determinism: the same `(config, seed)` always yields the same topology.
/// If the first candidate's communication graph (all 16 channels,
/// `PRR_t = 0.9`) is disconnected, further candidates are derived from
/// `seed` until one passes.
///
/// # Panics
///
/// Panics if `config.nodes_per_floor.len() != config.floors`, or if no
/// connected candidate is found within 64 attempts (which indicates a
/// physically meaningless configuration, e.g. a floor far larger than the
/// radio range).
pub fn generate(config: &TestbedConfig, seed: u64) -> Topology {
    assert_eq!(
        config.nodes_per_floor.len(),
        config.floors,
        "nodes_per_floor must list one entry per floor"
    );
    let all = ChannelId::all();
    let prr_t = Prr::new(0.9).expect("0.9 is a valid PRR");
    for attempt in 0..64u64 {
        let candidate_seed = seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let topo = generate_unchecked(config, candidate_seed);
        if topo.comm_graph(&all, prr_t).is_connected() {
            return topo;
        }
    }
    panic!(
        "no connected communication graph after 64 attempts for testbed '{}'; \
         the configuration is out of radio range",
        config.name
    );
}

/// Generates a candidate topology without the connectivity check.
fn generate_unchecked(config: &TestbedConfig, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let positions = place_nodes(config, &mut rng);
    let mut topo = Topology::new(config.name.clone(), positions);
    topo.set_propagation_model(config.model.clone());

    // Building-wide per-channel quality offsets (some channels are just
    // worse everywhere, e.g. under WiFi).
    let channel_offsets: Vec<f64> =
        (0..16).map(|_| gaussian(&mut rng) * config.channel_offset_sigma_db).collect();

    let n = topo.node_count();
    let model = config.model.clone();
    for a in 0..n {
        for b in (a + 1)..n {
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            let pa = topo.position(na);
            let pb = topo.position(nb);
            let d = pa.distance(&pb);
            let floors = pa.floors_between(&pb, model.floor_height_m);
            let mean = model.mean_rssi_dbm(d, floors);
            // Pair-level shadowing: one draw for the whole band.
            let pair_shadow = gaussian(&mut rng) * model.pair_shadowing_sigma_db;
            for ch in ChannelId::all().iter() {
                // ... plus a frequency-selective per-channel component and
                // the building-wide per-channel quality offset.
                let shadow = pair_shadow
                    + gaussian(&mut rng) * model.channel_shadowing_sigma_db
                    + channel_offsets[ch.band_index()];
                topo.set_shadowing_db(na, nb, ch, shadow);
                // ... plus a small per-direction asymmetry.
                for (tx, rx) in [(na, nb), (nb, na)] {
                    let asym = gaussian(&mut rng) * model.asymmetry_sigma_db;
                    let prr = model.prr_from_rssi(mean + shadow + asym);
                    topo.set_prr(tx, rx, ch, prr).expect("nodes are in range");
                }
            }
        }
    }
    topo
}

/// Places nodes on a jittered grid per floor, so density is roughly uniform
/// like an instrumented office/lab deployment.
fn place_nodes(config: &TestbedConfig, rng: &mut StdRng) -> Vec<Position> {
    let mut positions = Vec::with_capacity(config.node_count());
    for (floor, &count) in config.nodes_per_floor.iter().enumerate() {
        let z = floor as f64 * config.model.floor_height_m;
        // grid dimensions closest to the aspect ratio
        let cols = ((count as f64 * config.width_m / config.depth_m).sqrt()).ceil() as usize;
        let cols = cols.max(1);
        let rows = count.div_ceil(cols);
        let dx = config.width_m / cols as f64;
        let dy = config.depth_m / rows as f64;
        let mut placed = 0;
        'grid: for r in 0..rows {
            for c in 0..cols {
                if placed == count {
                    break 'grid;
                }
                let jx = (rng.gen::<f64>() - 0.5) * dx * 0.6;
                let jy = (rng.gen::<f64>() - 0.5) * dy * 0.6;
                positions.push(Position::new(
                    (c as f64 + 0.5) * dx + jx,
                    (r as f64 + 0.5) * dy + jy,
                    z,
                ));
                placed += 1;
            }
        }
    }
    positions
}

/// Standard normal draw via Box–Muller (keeps the dependency set to `rand`
/// itself; `rand_distr` is not needed for one distribution).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indriya_has_80_nodes_and_is_connected() {
        let t = indriya(1);
        assert_eq!(t.node_count(), 80);
        let chans = ChannelId::all();
        let g = t.comm_graph(&chans, Prr::new(0.9).unwrap());
        assert!(g.is_connected());
    }

    #[test]
    fn wustl_has_60_nodes_and_is_connected() {
        let t = wustl(1);
        assert_eq!(t.node_count(), 60);
        let g = t.comm_graph(&ChannelId::all(), Prr::new(0.9).unwrap());
        assert!(g.is_connected());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = wustl(42);
        let b = wustl(42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = wustl(1);
        let b = wustl(2);
        assert_ne!(a, b);
    }

    #[test]
    fn comm_graph_is_multi_hop() {
        // The physical testbeds are multi-hop; a synthetic stand-in must be
        // too, or the scheduling problem trivializes.
        let t = indriya(3);
        let g = t.comm_graph(&ChannelId::all(), Prr::new(0.9).unwrap());
        assert!(g.diameter() >= 3, "diameter {} too small", g.diameter());
    }

    #[test]
    fn reuse_graph_denser_than_comm_graph_with_smaller_diameter() {
        let t = wustl(5);
        let chans = ChannelId::range(11, 14).unwrap();
        let comm = t.comm_graph(&chans, Prr::new(0.9).unwrap());
        let reuse = t.reuse_graph(&chans);
        assert!(reuse.edge_count() > comm.edge_count());
        assert!(reuse.diameter() <= comm.diameter());
        assert!(reuse.diameter() >= 2, "reuse diameter must leave room for hop-gated reuse");
    }

    #[test]
    fn per_channel_prr_diversity_exists() {
        // Some link must be comm-graph grade on one channel yet poor on
        // another — that is what makes "all channels" a real constraint.
        let t = indriya(7);
        let mut diverse = 0usize;
        for a in t.nodes() {
            for b in t.nodes() {
                if a >= b {
                    continue;
                }
                let prrs: Vec<f64> =
                    ChannelId::all().iter().map(|c| t.prr(a, b, c).value()).collect();
                let max = prrs.iter().cloned().fold(0.0, f64::max);
                let min = prrs.iter().cloned().fold(1.0, f64::min);
                if max >= 0.9 && min < 0.9 {
                    diverse += 1;
                }
            }
        }
        assert!(diverse > 10, "only {diverse} channel-diverse links");
    }

    #[test]
    fn positions_lie_within_the_building() {
        let cfg = TestbedConfig::wustl();
        let t = wustl(9);
        for node in t.nodes() {
            let p = t.position(node);
            assert!((0.0..=cfg.width_m).contains(&p.x));
            assert!((0.0..=cfg.depth_m).contains(&p.y));
            assert!(p.z >= 0.0 && p.z <= (cfg.floors as f64) * cfg.model.floor_height_m);
        }
    }

    #[test]
    #[should_panic(expected = "one entry per floor")]
    fn mismatched_floor_listing_panics() {
        let mut cfg = TestbedConfig::wustl();
        cfg.nodes_per_floor.pop();
        let _ = generate(&cfg, 1);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
