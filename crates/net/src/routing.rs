//! Route construction over the communication graph.
//!
//! The paper's network manager "generates a single route from a source to a
//! destination node based on the shortest path algorithm and the types of
//! traffic". Shortest paths are by hop count on the communication graph with
//! deterministic tie-breaking (lowest predecessor id), so the same topology
//! and flow set always produce the same routes.

use crate::graph::UNREACHABLE;
use crate::{CommGraph, DirectedLink, NetError, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A route: the ordered node sequence a packet traverses.
///
/// A route is a *walk*, not necessarily a simple path: centralized traffic
/// climbs from the source to an access point and back down toward the
/// actuator, legitimately revisiting relay nodes. Only immediate repetition
/// (a self-link) is forbidden. Shortest-path routes produced by
/// [`shortest_path`] are always simple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    nodes: Vec<NodeId>,
}

impl Route {
    /// Creates a route from an ordered node sequence.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two nodes are given or if two consecutive nodes
    /// are equal (a link needs distinct endpoints).
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(nodes.len() >= 2, "a route needs at least a source and a destination");
        for w in nodes.windows(2) {
            assert!(w[0] != w[1], "route contains self-link at node {}", w[0]);
        }
        Route { nodes }
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("routes are non-empty")
    }

    /// The ordered node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of links (hops) in the route.
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The directed links `l_i1, l_i2, …, l_ik` along the route.
    pub fn links(&self) -> impl Iterator<Item = DirectedLink> + '_ {
        self.nodes.windows(2).map(|w| DirectedLink::new(w[0], w[1]))
    }

    /// Whether `node` appears anywhere on the route.
    pub fn visits(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Concatenates two route segments sharing a junction node (used for
    /// centralized traffic: source → access point, then access point →
    /// destination). Nodes visited by both segments are kept — the packet
    /// really is relayed twice through them, once up and once down.
    ///
    /// # Panics
    ///
    /// Panics if `self.destination() != second.source()`.
    pub fn join(&self, second: &Route) -> Route {
        assert_eq!(self.destination(), second.source(), "segments must share the junction node");
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&second.nodes[1..]);
        Route::new(nodes)
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "->")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

/// Computes a shortest (hop-count) route from `src` to `dst` on the
/// communication graph, breaking ties toward the lowest predecessor id.
///
/// # Errors
///
/// Returns [`NetError::Unreachable`] if no path exists.
pub fn shortest_path(graph: &CommGraph, src: NodeId, dst: NodeId) -> Result<Route, NetError> {
    if src == dst {
        // A degenerate request; model it as unreachable since a flow needs
        // at least one link.
        return Err(NetError::Unreachable { from: src.index(), to: dst.index() });
    }
    let n = graph.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    let mut q = VecDeque::new();
    dist[src.index()] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        if u == dst {
            break;
        }
        let du = dist[u.index()];
        // Visit neighbors in ascending id order for deterministic ties.
        let mut neighbors: Vec<NodeId> = graph.neighbors(u).to_vec();
        neighbors.sort_unstable();
        for v in neighbors {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                pred[v.index()] = Some(u);
                q.push_back(v);
            }
        }
    }
    if dist[dst.index()] == UNREACHABLE {
        return Err(NetError::Unreachable { from: src.index(), to: dst.index() });
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = pred[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    debug_assert_eq!(nodes[0], src);
    Ok(Route::new(nodes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// 0 - 1 - 2
    ///  \     /
    ///   3 - 4     (0-3, 3-4, 4-2): two 2-hop-ish options
    fn diamond() -> CommGraph {
        CommGraph::from_edges(
            5,
            &[(n(0), n(1)), (n(1), n(2)), (n(0), n(3)), (n(3), n(4)), (n(4), n(2))],
        )
    }

    #[test]
    fn shortest_path_minimizes_hops() {
        let g = diamond();
        let r = shortest_path(&g, n(0), n(2)).unwrap();
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.nodes(), &[n(0), n(1), n(2)]);
    }

    #[test]
    fn shortest_path_is_deterministic_on_ties() {
        // 0-1-3 and 0-2-3 are both 2 hops; lowest-id predecessor wins.
        let g = CommGraph::from_edges(4, &[(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(3))]);
        let r = shortest_path(&g, n(0), n(3)).unwrap();
        assert_eq!(r.nodes(), &[n(0), n(1), n(3)]);
    }

    #[test]
    fn unreachable_destination_errors() {
        let g = CommGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        let err = shortest_path(&g, n(0), n(3)).unwrap_err();
        assert_eq!(err, NetError::Unreachable { from: 0, to: 3 });
    }

    #[test]
    fn source_equals_destination_errors() {
        let g = diamond();
        assert!(shortest_path(&g, n(1), n(1)).is_err());
    }

    #[test]
    fn route_links_follow_node_order() {
        let r = Route::new(vec![n(0), n(1), n(2)]);
        let links: Vec<DirectedLink> = r.links().collect();
        assert_eq!(links, vec![DirectedLink::new(n(0), n(1)), DirectedLink::new(n(1), n(2))]);
        assert_eq!(r.source(), n(0));
        assert_eq!(r.destination(), n(2));
        assert_eq!(r.hop_count(), 2);
    }

    #[test]
    fn route_allows_revisits_for_up_down_walks() {
        // 0 up to 2 and back down through 1 — a legitimate centralized walk.
        let r = Route::new(vec![n(0), n(1), n(2), n(1), n(3)]);
        assert_eq!(r.hop_count(), 4);
        assert!(r.visits(n(2)));
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn route_rejects_consecutive_repeats() {
        let _ = Route::new(vec![n(0), n(1), n(1), n(2)]);
    }

    #[test]
    #[should_panic(expected = "at least a source")]
    fn route_rejects_single_node() {
        let _ = Route::new(vec![n(0)]);
    }

    #[test]
    fn join_concatenates_segments() {
        let up = Route::new(vec![n(0), n(1), n(2)]);
        let down = Route::new(vec![n(2), n(3)]);
        let joined = up.join(&down);
        assert_eq!(joined.nodes(), &[n(0), n(1), n(2), n(3)]);
    }

    #[test]
    fn join_keeps_shared_relay_nodes() {
        // up: 0 -> 1 -> 2, down: 2 -> 1 -> 4. Node 1 relays the packet both
        // up and down; both traversals stay in the walk.
        let up = Route::new(vec![n(0), n(1), n(2)]);
        let down = Route::new(vec![n(2), n(1), n(4)]);
        let joined = up.join(&down);
        assert_eq!(joined.nodes(), &[n(0), n(1), n(2), n(1), n(4)]);
        assert_eq!(joined.hop_count(), 4);
    }

    #[test]
    #[should_panic(expected = "junction")]
    fn join_requires_shared_junction() {
        let up = Route::new(vec![n(0), n(1)]);
        let down = Route::new(vec![n(2), n(3)]);
        let _ = up.join(&down);
    }

    #[test]
    fn display_formats_chain() {
        let r = Route::new(vec![n(0), n(7)]);
        assert_eq!(r.to_string(), "n0->n7");
    }
}
