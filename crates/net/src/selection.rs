//! Channel-selection strategies.
//!
//! The paper's experiments "use m channels" without fixing *which* m; its
//! §VII-A remark that more channels can *hurt* schedulability (by thinning
//! the communication graph — a link must clear `PRR_t` on every channel it
//! hops over) comes from the authors' earlier channel-selection study.
//! This module provides the strategies the ablation bench compares.

use crate::{ChannelId, ChannelSet, NodeId, Prr, Topology};

/// How to pick `m` channels out of the measured 16.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelSelection {
    /// The first `m` channels of the band (11, 12, …) — the baseline used
    /// by the figure binaries.
    FirstM,
    /// The `m` channels with the highest network-wide mean PRR.
    BestMeanPrr,
    /// The `m` channels that individually support the most
    /// communication-grade links (both directions ≥ `PRR_t`). This is the
    /// strategy that best preserves route diversity.
    MostReliableLinks {
        /// The link-selection threshold used to count qualifying links.
        prr_t: Prr,
    },
}

impl ChannelSelection {
    /// Selects `m` channels from `topology` under this strategy.
    ///
    /// Ties break toward lower channel numbers; the result is ordered by
    /// channel number so the hopping map is stable.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds 16.
    pub fn select(&self, topology: &Topology, m: usize) -> ChannelSet {
        assert!((1..=16).contains(&m), "channel count must be within 1..=16");
        match self {
            ChannelSelection::FirstM => ChannelId::all().take(m),
            ChannelSelection::BestMeanPrr => {
                let mut scored: Vec<(f64, ChannelId)> =
                    ChannelId::all().iter().map(|ch| (mean_prr(topology, ch), ch)).collect();
                rank_and_take(&mut scored, m)
            }
            ChannelSelection::MostReliableLinks { prr_t } => {
                let mut scored: Vec<(f64, ChannelId)> = ChannelId::all()
                    .iter()
                    .map(|ch| (reliable_link_count(topology, ch, *prr_t) as f64, ch))
                    .collect();
                rank_and_take(&mut scored, m)
            }
        }
    }
}

/// Mean directed PRR over the *measured* links of one channel (links with
/// `PRR > 0`; sparse plant-scale topologies leave most pairs unmeasured).
///
/// A channel with no measured links scores `0.0` — the naive `sum / count`
/// would be `0/0 = NaN` there, and a NaN score poisons the total order the
/// ranking sort relies on.
fn mean_prr(topology: &Topology, channel: ChannelId) -> f64 {
    let n = topology.node_count();
    let mut sum = 0.0;
    let mut measured = 0usize;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                let prr = topology.prr(NodeId::new(a), NodeId::new(b), channel).value();
                if prr > 0.0 {
                    sum += prr;
                    measured += 1;
                }
            }
        }
    }
    if measured == 0 {
        return 0.0;
    }
    sum / measured as f64
}

/// Number of unordered pairs with both directions ≥ `prr_t` on `channel`.
fn reliable_link_count(topology: &Topology, channel: ChannelId, prr_t: Prr) -> usize {
    let n = topology.node_count();
    let mut count = 0;
    for a in 0..n {
        for b in (a + 1)..n {
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            if topology.prr(na, nb, channel).value() >= prr_t.value()
                && topology.prr(nb, na, channel).value() >= prr_t.value()
            {
                count += 1;
            }
        }
    }
    count
}

/// Takes the top `m` by score (desc), ties toward the lower channel, and
/// returns them in channel order.
///
/// Sorts with [`f64::total_cmp`] so the ranking is a total order even if a
/// scoring function ever leaks a NaN — the old `partial_cmp().expect()`
/// panicked there — and the ChannelId tiebreak keeps the result
/// deterministic.
fn rank_and_take(scored: &mut [(f64, ChannelId)], m: usize) -> ChannelSet {
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.number().cmp(&b.1.number())));
    let mut picked: Vec<ChannelId> = scored[..m].iter().map(|(_, ch)| *ch).collect();
    picked.sort_by_key(|c| c.number());
    ChannelSet::new(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{testbeds, Position};

    #[test]
    fn first_m_is_the_band_prefix() {
        let topo = testbeds::wustl(1);
        let set = ChannelSelection::FirstM.select(&topo, 3);
        let nums: Vec<u8> = set.iter().map(ChannelId::number).collect();
        assert_eq!(nums, vec![11, 12, 13]);
    }

    #[test]
    fn best_mean_prefers_the_engineered_channel() {
        // hand-build: channel 20 perfect everywhere, others zero
        let mut topo = Topology::new(
            "sel",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(5.0, 0.0, 0.0),
                Position::new(10.0, 0.0, 0.0),
            ],
        );
        let c20 = ChannelId::new(20).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    topo.set_prr(NodeId::new(a), NodeId::new(b), c20, Prr::ONE).unwrap();
                }
            }
        }
        let set = ChannelSelection::BestMeanPrr.select(&topo, 1);
        assert_eq!(set.at(0), c20);
    }

    #[test]
    fn most_reliable_links_counts_bidirectional_pairs() {
        let mut topo =
            Topology::new("sel2", vec![Position::new(0.0, 0.0, 0.0), Position::new(5.0, 0.0, 0.0)]);
        let (c12, c13) = (ChannelId::new(12).unwrap(), ChannelId::new(13).unwrap());
        // c12: one direction only (does not count); c13: both directions
        topo.set_prr(NodeId::new(0), NodeId::new(1), c12, Prr::ONE).unwrap();
        topo.set_prr(NodeId::new(0), NodeId::new(1), c13, Prr::new(0.95).unwrap()).unwrap();
        topo.set_prr(NodeId::new(1), NodeId::new(0), c13, Prr::new(0.95).unwrap()).unwrap();
        let strategy = ChannelSelection::MostReliableLinks { prr_t: Prr::new(0.9).unwrap() };
        let set = strategy.select(&topo, 1);
        assert_eq!(set.at(0), c13);
    }

    #[test]
    fn selection_returns_channels_in_order() {
        let topo = testbeds::indriya(2);
        for strategy in [
            ChannelSelection::FirstM,
            ChannelSelection::BestMeanPrr,
            ChannelSelection::MostReliableLinks { prr_t: Prr::new(0.9).unwrap() },
        ] {
            let set = strategy.select(&topo, 5);
            assert_eq!(set.len(), 5);
            let nums: Vec<u8> = set.iter().map(ChannelId::number).collect();
            let mut sorted = nums.clone();
            sorted.sort_unstable();
            assert_eq!(nums, sorted, "{strategy:?} must return ordered channels");
        }
    }

    #[test]
    fn best_channels_support_at_least_as_many_comm_edges() {
        let topo = testbeds::wustl(3);
        let prr_t = Prr::new(0.9).unwrap();
        let first = ChannelSelection::FirstM.select(&topo, 4);
        let best = ChannelSelection::MostReliableLinks { prr_t }.select(&topo, 4);
        let edges_first = topo.comm_graph(&first, prr_t).edge_count();
        let edges_best = topo.comm_graph(&best, prr_t).edge_count();
        // not a theorem (the comm graph needs joint reliability), but with
        // correlated pair shadowing the per-channel ranking is a strong
        // proxy; allow equality
        assert!(
            edges_best + 10 >= edges_first,
            "best-link selection should roughly preserve comm edges: {edges_best} vs {edges_first}"
        );
    }

    #[test]
    fn sparse_topology_scores_measured_links_only() {
        // A plant-scale (sparse) topology: most pairs are unmeasured, and
        // whole channels can carry zero measured links. Channel 20 has two
        // perfect links; channel 11 has six mediocre ones; the rest are
        // empty. Mean-over-measured must prefer the perfect channel — the
        // old dense mean averaged over every pair, so the channel with
        // *more* (worse) links won and empty channels depended on a
        // 0-over-0 guard that sparse scoring no longer trips.
        let positions: Vec<Position> =
            (0..8).map(|i| Position::new(5.0 * f64::from(i), 0.0, 0.0)).collect();
        let mut topo = Topology::new("sparse", positions);
        let c20 = ChannelId::new(20).unwrap();
        let c11 = ChannelId::new(11).unwrap();
        for (a, b) in [(0usize, 1usize), (1, 2)] {
            topo.set_prr(NodeId::new(a), NodeId::new(b), c20, Prr::ONE).unwrap();
        }
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)] {
            topo.set_prr(NodeId::new(a), NodeId::new(b), c11, Prr::new(0.5).unwrap()).unwrap();
        }
        let set = ChannelSelection::BestMeanPrr.select(&topo, 2);
        assert_eq!(set.at(0), c11, "result stays ordered by channel number");
        assert_eq!(set.at(1), c20);
        let top = ChannelSelection::BestMeanPrr.select(&topo, 1);
        assert_eq!(top.at(0), c20, "few perfect links must beat many mediocre ones");
        // selection over a topology where *every* channel is empty stays
        // deterministic and total-ordered (ties toward the band prefix)
        let empty = Topology::new("void", vec![Position::default(), Position::new(5.0, 0.0, 0.0)]);
        let set = ChannelSelection::BestMeanPrr.select(&empty, 3);
        let nums: Vec<u8> = set.iter().map(ChannelId::number).collect();
        assert_eq!(nums, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "within 1..=16")]
    fn zero_channels_panics() {
        let topo = testbeds::wustl(1);
        let _ = ChannelSelection::FirstM.select(&topo, 0);
    }
}
