//! The detection policy: PRR gate + two-sample K-S test.

use serde::{Deserialize, Serialize};
use wsan_stats::ks::{two_sample, KsOutcome};

/// Per-link verdict of the detection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkVerdict {
    /// The link meets the reliability requirement under reuse; nothing to
    /// do.
    Healthy,
    /// `PRR_r < PRR_t` **and** the K-S test rejects: channel reuse degrades
    /// this link — reassign its reuse slots to other channels or times.
    ReuseDegraded,
    /// `PRR_r < PRR_t` but the K-S test accepts: the degradation has another
    /// cause (external interference, environment); removing reuse would not
    /// fix it.
    ExternalCause,
    /// Not enough data to run the test (a sample set was empty).
    Inconclusive,
}

/// The §VI detection policy with its two parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionPolicy {
    /// Reliability threshold `PRR_t` (paper: 0.9).
    pub prr_threshold: f64,
    /// Significance level `α` of the K-S test (paper: 0.05).
    pub alpha: f64,
}

impl Default for DetectionPolicy {
    fn default() -> Self {
        DetectionPolicy { prr_threshold: 0.9, alpha: 0.05 }
    }
}

impl DetectionPolicy {
    /// Classifies one link from its PRR sample distributions under reuse
    /// (`reuse_samples`) and contention-free (`cf_samples`) conditions.
    ///
    /// The gate uses the *mean over the reuse distribution* as `PRR_r`; the
    /// K-S test then compares full distributions.
    pub fn classify(&self, reuse_samples: &[f64], cf_samples: &[f64]) -> LinkVerdict {
        if reuse_samples.is_empty() {
            return LinkVerdict::Inconclusive;
        }
        let prr_r = reuse_samples.iter().sum::<f64>() / reuse_samples.len() as f64;
        if prr_r >= self.prr_threshold {
            return LinkVerdict::Healthy;
        }
        match two_sample(cf_samples, reuse_samples) {
            Ok(result) => match result.outcome(self.alpha) {
                KsOutcome::Reject => LinkVerdict::ReuseDegraded,
                KsOutcome::Accept => LinkVerdict::ExternalCause,
            },
            Err(_) => LinkVerdict::Inconclusive,
        }
    }

    /// Runs the bare K-S comparison without the PRR gate — used to ask "did
    /// reuse affect this link at all?" for links that still meet the
    /// requirement (the paper reports such links under interference: they
    /// were already reuse-affected in the clean environment but above
    /// `PRR_t`, so no rescheduling was needed).
    pub fn reuse_affected(&self, reuse_samples: &[f64], cf_samples: &[f64]) -> Option<bool> {
        two_sample(cf_samples, reuse_samples)
            .ok()
            .map(|r| r.outcome(self.alpha) == KsOutcome::Reject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_cf() -> Vec<f64> {
        (0..18).map(|i| 0.94 + 0.003 * (i % 5) as f64).collect()
    }

    #[test]
    fn healthy_link_short_circuits() {
        let policy = DetectionPolicy::default();
        let reuse: Vec<f64> = (0..18).map(|i| 0.92 + 0.004 * (i % 4) as f64).collect();
        assert_eq!(policy.classify(&reuse, &healthy_cf()), LinkVerdict::Healthy);
    }

    #[test]
    fn reuse_degradation_is_rejected_by_ks() {
        let policy = DetectionPolicy::default();
        let reuse: Vec<f64> = (0..18).map(|i| 0.55 + 0.01 * (i % 6) as f64).collect();
        assert_eq!(policy.classify(&reuse, &healthy_cf()), LinkVerdict::ReuseDegraded);
    }

    #[test]
    fn external_interference_is_accepted_by_ks() {
        // both conditions equally degraded → K-S accepts → external cause
        let policy = DetectionPolicy::default();
        let degraded: Vec<f64> = (0..18).map(|i| 0.55 + 0.01 * (i % 6) as f64).collect();
        assert_eq!(policy.classify(&degraded.clone(), &degraded), LinkVerdict::ExternalCause);
    }

    #[test]
    fn near_identical_degraded_distributions_accept() {
        let policy = DetectionPolicy::default();
        let reuse: Vec<f64> = (0..18).map(|i| 0.60 + 0.01 * (i % 5) as f64).collect();
        let cf: Vec<f64> = (0..18).map(|i| 0.605 + 0.01 * ((i + 2) % 5) as f64).collect();
        assert_eq!(policy.classify(&reuse, &cf), LinkVerdict::ExternalCause);
    }

    #[test]
    fn empty_samples_are_inconclusive() {
        let policy = DetectionPolicy::default();
        assert_eq!(policy.classify(&[], &healthy_cf()), LinkVerdict::Inconclusive);
        let degraded = vec![0.5; 18];
        assert_eq!(policy.classify(&degraded, &[]), LinkVerdict::Inconclusive);
    }

    #[test]
    fn gate_uses_mean_of_reuse_distribution() {
        let policy = DetectionPolicy { prr_threshold: 0.7, alpha: 0.05 };
        // mean 0.75 ≥ 0.7 → healthy even though some samples dip below
        let reuse = vec![0.6, 0.9, 0.6, 0.9, 0.6, 0.9, 0.75, 0.75];
        assert_eq!(policy.classify(&reuse, &healthy_cf()), LinkVerdict::Healthy);
    }

    #[test]
    fn reuse_affected_detects_shift_above_threshold() {
        // link still meets PRR_t under reuse but the distribution shifted:
        // classify says Healthy, reuse_affected says true
        let policy = DetectionPolicy::default();
        let reuse: Vec<f64> = (0..18).map(|i| 0.91 + 0.002 * (i % 4) as f64).collect();
        let cf: Vec<f64> = (0..18).map(|i| 0.98 + 0.002 * (i % 4) as f64).collect();
        assert_eq!(policy.classify(&reuse, &cf), LinkVerdict::Healthy);
        assert_eq!(policy.reuse_affected(&reuse, &cf), Some(true));
    }

    #[test]
    fn reuse_affected_is_none_without_data() {
        let policy = DetectionPolicy::default();
        assert_eq!(policy.reuse_affected(&[], &[0.9]), None);
    }
}
