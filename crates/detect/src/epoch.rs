//! Epoch bookkeeping: periodic health-report rounds.
//!
//! WirelessHART nodes deliver a health report every 15 minutes; the paper
//! calls that period an *epoch* and gathers 18 PRR samples per link per
//! condition in each one. [`EpochReport`] runs the detection policy over
//! one epoch's samples for every link involved in channel reuse and records
//! the per-link verdicts (Figs. 10 and 11 summarize these across epochs).

use crate::{DetectionPolicy, LinkVerdict};
use serde::{Deserialize, Serialize};
use wsan_net::DirectedLink;

/// Index of a health-report epoch, starting at 0.
pub type EpochId = usize;

/// One link's samples and verdict within an epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkEpochRecord {
    /// The link under test.
    pub link: DirectedLink,
    /// PRR samples from slots where the link's channel was reused.
    pub reuse_samples: Vec<f64>,
    /// PRR samples from contention-free slots.
    pub cf_samples: Vec<f64>,
    /// Mean PRR under reuse (`PRR_r`), if any sample exists.
    pub prr_r: Option<f64>,
    /// The policy verdict.
    pub verdict: LinkVerdict,
    /// Outcome of the bare K-S comparison regardless of the PRR gate:
    /// `Some(true)` when reuse measurably shifts the distribution.
    pub reuse_affected: Option<bool>,
}

/// Verdicts for all reuse-involved links in one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// The epoch index.
    pub epoch: EpochId,
    /// Per-link records, ordered by link.
    pub records: Vec<LinkEpochRecord>,
}

impl EpochReport {
    /// Evaluates the detection policy over one epoch.
    ///
    /// `samples` yields, per link involved in reuse, its reuse-condition and
    /// contention-free-condition PRR samples for this epoch.
    pub fn evaluate<I>(epoch: EpochId, policy: &DetectionPolicy, samples: I) -> Self
    where
        I: IntoIterator<Item = (DirectedLink, Vec<f64>, Vec<f64>)>,
    {
        let mut records: Vec<LinkEpochRecord> = samples
            .into_iter()
            .map(|(link, reuse_samples, cf_samples)| {
                let verdict = policy.classify(&reuse_samples, &cf_samples);
                let reuse_affected = policy.reuse_affected(&reuse_samples, &cf_samples);
                let prr_r = if reuse_samples.is_empty() {
                    None
                } else {
                    Some(reuse_samples.iter().sum::<f64>() / reuse_samples.len() as f64)
                };
                LinkEpochRecord { link, reuse_samples, cf_samples, prr_r, verdict, reuse_affected }
            })
            .collect();
        records.sort_by_key(|r| r.link);
        EpochReport { epoch, records }
    }

    /// Links judged degraded *by channel reuse* this epoch (the "rejected"
    /// links of Fig. 11).
    pub fn rejected(&self) -> Vec<DirectedLink> {
        self.records
            .iter()
            .filter(|r| r.verdict == LinkVerdict::ReuseDegraded)
            .map(|r| r.link)
            .collect()
    }

    /// Links below the reliability requirement whose degradation the policy
    /// attributes to other causes ("accepted" links of Fig. 10).
    pub fn accepted(&self) -> Vec<DirectedLink> {
        self.records
            .iter()
            .filter(|r| r.verdict == LinkVerdict::ExternalCause)
            .map(|r| r.link)
            .collect()
    }

    /// Links that fail the reliability requirement for any reason.
    pub fn below_threshold(&self, prr_t: f64) -> Vec<DirectedLink> {
        self.records.iter().filter(|r| r.prr_r.is_some_and(|p| p < prr_t)).map(|r| r.link).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::NodeId;

    fn link(a: usize, b: usize) -> DirectedLink {
        DirectedLink::new(NodeId::new(a), NodeId::new(b))
    }

    fn healthy() -> Vec<f64> {
        (0..18).map(|i| 0.95 + 0.002 * (i % 4) as f64).collect()
    }

    fn degraded() -> Vec<f64> {
        (0..18).map(|i| 0.55 + 0.01 * (i % 6) as f64).collect()
    }

    #[test]
    fn epoch_separates_verdicts() {
        let policy = DetectionPolicy::default();
        let report = EpochReport::evaluate(
            0,
            &policy,
            vec![
                (link(0, 1), degraded(), healthy()),  // reuse degraded
                (link(2, 3), degraded(), degraded()), // external
                (link(4, 5), healthy(), healthy()),   // healthy
            ],
        );
        assert_eq!(report.rejected(), vec![link(0, 1)]);
        assert_eq!(report.accepted(), vec![link(2, 3)]);
        assert_eq!(report.below_threshold(0.9), vec![link(0, 1), link(2, 3)]);
    }

    #[test]
    fn records_are_sorted_by_link() {
        let policy = DetectionPolicy::default();
        let report = EpochReport::evaluate(
            1,
            &policy,
            vec![(link(4, 5), healthy(), healthy()), (link(0, 1), healthy(), healthy())],
        );
        assert_eq!(report.records[0].link, link(0, 1));
        assert_eq!(report.epoch, 1);
    }

    #[test]
    fn prr_r_is_recorded() {
        let policy = DetectionPolicy::default();
        let report =
            EpochReport::evaluate(0, &policy, vec![(link(0, 1), vec![0.5, 0.7], healthy())]);
        assert!((report.records[0].prr_r.unwrap() - 0.6).abs() < 1e-12);
    }
}
