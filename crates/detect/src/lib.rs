//! Detection of link-reliability degradation caused by channel reuse (§VI).
//!
//! Channel reuse is not the only reason a link's PRR can drop: environment
//! dynamics and external interference (WiFi) degrade links too, and
//! rescheduling away from reuse would not help those. The paper's detection
//! policy tells the causes apart per link by comparing the PRR distribution
//! in slots *with* channel reuse against slots *without*:
//!
//! 1. Gate: only links whose reuse-condition PRR falls below the
//!    reliability threshold `PRR_t` are examined.
//! 2. Two-sample Kolmogorov–Smirnov test between `PRR_DIST_r` (reuse slots)
//!    and `PRR_DIST_cf` (contention-free slots) at significance `α`:
//!    * **reject** ⇒ the distributions differ ⇒ channel reuse degrades the
//!      link ⇒ reschedule it,
//!    * **accept** ⇒ the link is equally bad without reuse ⇒ the cause is
//!      external.
//!
//! # Example
//!
//! ```
//! use wsan_detect::{DetectionPolicy, LinkVerdict};
//!
//! let policy = DetectionPolicy::default(); // PRR_t = 0.9, α = 0.05
//! let cf = vec![0.95, 0.97, 0.93, 0.96, 0.99, 0.94, 0.95, 0.98, 0.97, 0.96];
//! let reuse = vec![0.55, 0.62, 0.50, 0.57, 0.60, 0.52, 0.58, 0.54, 0.61, 0.53];
//! assert_eq!(policy.classify(&reuse, &cf), LinkVerdict::ReuseDegraded);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epoch;
mod naive;
mod policy;

pub use epoch::{EpochId, EpochReport, LinkEpochRecord};
pub use naive::NaivePolicy;
pub use policy::{DetectionPolicy, LinkVerdict};
