//! The naive threshold-only classifier — §VI's strawman, implemented so the
//! K-S policy's advantage is measurable.
//!
//! "A naive approach is to use a PRR threshold to identify links affected by
//! channel reuse … However, channel reuse is not the only possible cause of
//! transmission failures." (§VI). The naive policy blames channel reuse for
//! *every* link below the threshold; under external interference it floods
//! the network manager with pointless rescheduling work, because removing
//! reuse from an externally-jammed link cannot help it.

use crate::LinkVerdict;
use serde::{Deserialize, Serialize};

/// The threshold-only policy: any reuse-involved link whose PRR under reuse
/// falls below `prr_threshold` is blamed on channel reuse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaivePolicy {
    /// The reliability threshold `PRR_t`.
    pub prr_threshold: f64,
}

impl Default for NaivePolicy {
    fn default() -> Self {
        NaivePolicy { prr_threshold: 0.9 }
    }
}

impl NaivePolicy {
    /// Classifies a link from its reuse-condition samples alone.
    ///
    /// Never returns [`LinkVerdict::ExternalCause`] — that is the point.
    pub fn classify(&self, reuse_samples: &[f64]) -> LinkVerdict {
        if reuse_samples.is_empty() {
            return LinkVerdict::Inconclusive;
        }
        let prr_r = reuse_samples.iter().sum::<f64>() / reuse_samples.len() as f64;
        if prr_r >= self.prr_threshold {
            LinkVerdict::Healthy
        } else {
            LinkVerdict::ReuseDegraded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectionPolicy;

    fn degraded() -> Vec<f64> {
        (0..18).map(|i| 0.6 + 0.01 * (i % 5) as f64).collect()
    }

    #[test]
    fn naive_blames_reuse_for_everything_below_threshold() {
        let naive = NaivePolicy::default();
        assert_eq!(naive.classify(&degraded()), LinkVerdict::ReuseDegraded);
        assert_eq!(naive.classify(&[0.95; 18]), LinkVerdict::Healthy);
        assert_eq!(naive.classify(&[]), LinkVerdict::Inconclusive);
    }

    #[test]
    fn ks_policy_corrects_the_naive_misattribution() {
        // externally degraded link: both conditions equally bad
        let naive = NaivePolicy::default();
        let ks = DetectionPolicy::default();
        let both_bad = degraded();
        // the naive policy demands a (useless) reschedule…
        assert_eq!(naive.classify(&both_bad), LinkVerdict::ReuseDegraded);
        // …the K-S policy sees the contention-free slots are just as bad
        assert_eq!(ks.classify(&both_bad.clone(), &both_bad), LinkVerdict::ExternalCause);
    }

    #[test]
    fn policies_agree_when_reuse_really_is_the_cause() {
        let naive = NaivePolicy::default();
        let ks = DetectionPolicy::default();
        let cf: Vec<f64> = (0..18).map(|i| 0.97 + 0.002 * (i % 3) as f64).collect();
        let reuse = degraded();
        assert_eq!(naive.classify(&reuse), LinkVerdict::ReuseDegraded);
        assert_eq!(ks.classify(&reuse, &cf), LinkVerdict::ReuseDegraded);
    }
}
