//! The classifier exercised on *simulated* (not hand-crafted) PRR data:
//! ground truth comes from the schedule (which cells really share) and the
//! interference environment (which links are really jammed).

use wsan_core::{NetworkModel, ReuseAggressively, Scheduler};
use wsan_detect::{DetectionPolicy, LinkVerdict, NaivePolicy};
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr};
use wsan_sim::{LinkCondition, SimConfig, Simulator};

#[test]
fn clean_environment_yields_no_external_verdicts() {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(60, PeriodRange::new(0, 0).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(0xFEED).generate(&comm, &cfg).unwrap();
    let schedule = ReuseAggressively::new(2).schedule(&set, &model).unwrap();
    let sim = Simulator::new(&topo, &channels, &set, &schedule);
    let report = sim.run(&SimConfig { repetitions: 180, window_reps: 10, ..SimConfig::default() });
    let policy = DetectionPolicy::default();
    let naive = NaivePolicy::default();
    let mut external = 0;
    let mut rejected = 0;
    let mut naive_rejected = 0;
    for link in report.links_with_reuse() {
        let reuse = report.prr_distribution(link, LinkCondition::Reuse);
        let cf = report.prr_distribution(link, LinkCondition::ContentionFree);
        match policy.classify(&reuse, &cf) {
            LinkVerdict::ExternalCause => external += 1,
            LinkVerdict::ReuseDegraded => rejected += 1,
            _ => {}
        }
        if naive.classify(&reuse) == LinkVerdict::ReuseDegraded {
            naive_rejected += 1;
        }
    }
    // without interferers, any degradation IS reuse-caused: external
    // verdicts should be (close to) absent, and the K-S policy should agree
    // with the naive policy (both have only one cause to find)
    assert!(external <= 1, "clean environment produced {external} external verdicts");
    assert!(
        (rejected as i64 - naive_rejected as i64).abs() <= 2,
        "policies should nearly agree in a clean environment: KS {rejected}, naive {naive_rejected}"
    );
}

#[test]
fn wifi_environment_splits_the_verdicts() {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(60, PeriodRange::new(0, 0).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(0xFEED).generate(&comm, &cfg).unwrap();
    let schedule = ReuseAggressively::new(2).schedule(&set, &model).unwrap();
    let sim = Simulator::new(&topo, &channels, &set, &schedule);
    let interferers = wsan_expr::detection::per_floor_interferers(&topo, -3.0, 0.10);
    let report = sim.run(&SimConfig {
        repetitions: 180,
        window_reps: 10,
        interferers,
        ..SimConfig::default()
    });
    let policy = DetectionPolicy::default();
    let naive = NaivePolicy::default();
    let mut external = 0;
    let mut naive_blames_reuse_for_those = 0;
    for link in report.links_with_reuse() {
        let reuse = report.prr_distribution(link, LinkCondition::Reuse);
        let cf = report.prr_distribution(link, LinkCondition::ContentionFree);
        if policy.classify(&reuse, &cf) == LinkVerdict::ExternalCause {
            external += 1;
            if naive.classify(&reuse) == LinkVerdict::ReuseDegraded {
                naive_blames_reuse_for_those += 1;
            }
        }
    }
    assert!(external >= 3, "WiFi should create externally-degraded links, got {external}");
    // every one of those is a naive-policy misattribution
    assert_eq!(
        naive_blames_reuse_for_those, external,
        "the naive policy blames reuse for externally degraded links"
    );
}
