//! The tracing facade: levels, structured fields, spans, events, and the
//! global dispatcher.
//!
//! The design optimizes for the disabled case: every emission site first
//! checks [`enabled`], a single relaxed atomic load against the installed
//! subscriber's maximum level. With the [`NullSubscriber`] installed (or
//! nothing installed at all, the default) that check fails and no field
//! formatting, locking, or allocation happens — instrumented hot paths stay
//! within noise of uninstrumented ones.
//!
//! [`NullSubscriber`]: crate::NullSubscriber

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Severity of an event or span, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// The run cannot proceed as requested.
    Error = 1,
    /// Something degraded but the run continues.
    Warn = 2,
    /// Operator-relevant lifecycle milestones (epochs, repairs, runs).
    Info = 3,
    /// Per-decision diagnostics (reuse relaxations, classifications).
    Debug = 4,
    /// Per-slot / per-attempt firehose.
    Trace = 5,
}

impl Level {
    /// Parses the level names accepted by `--log-level` (plus `off`,
    /// returned as `None`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s {
            "off" => Ok(None),
            "error" => Ok(Some(Level::Error)),
            "warn" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            other => Err(format!("unknown log level '{other}' (off|error|warn|info|debug|trace)")),
        }
    }

    /// The lowercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The value of one structured field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (pre-rendered display values included).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! from_int {
    ($($t:ty => $variant:ident as $as:ty),+ $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $as)
            }
        }
    )+};
}

from_int!(i64 => I64 as i64, i32 => I64 as i64, u64 => U64 as u64, u32 => U64 as u64,
          u16 => U64 as u64, usize => U64 as u64);

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    /// Renders any `Display` value into a string field (for link ids, flow
    /// ids, and other domain types this crate cannot know about).
    pub fn display(v: impl fmt::Display) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

/// One structured key/value field attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub key: &'static str,
    /// Field value.
    pub value: FieldValue,
}

/// Shorthand constructor for a [`Field`].
pub fn kv(key: &'static str, value: impl Into<FieldValue>) -> Field {
    Field { key, value: value.into() }
}

/// A fired event as the subscriber sees it.
#[derive(Debug)]
pub struct EventRecord<'a> {
    /// Severity.
    pub level: Level,
    /// Emitting component (module-path-like, e.g. `wsan_core::rc`).
    pub target: &'a str,
    /// Human-readable message.
    pub message: &'a str,
    /// Structured fields.
    pub fields: &'a [Field],
    /// Names of the spans currently open on this thread, outermost first.
    pub span_path: &'a [&'static str],
}

/// An entered or exited span as the subscriber sees it. `span_path`
/// includes the span itself as its last element.
#[derive(Debug)]
pub struct SpanRecord<'a> {
    /// Severity.
    pub level: Level,
    /// Span name.
    pub name: &'static str,
    /// Structured fields recorded at entry.
    pub fields: &'a [Field],
    /// Open spans on this thread, outermost first, this span last.
    pub span_path: &'a [&'static str],
}

/// Receives events and span transitions. Implementations must be cheap to
/// call or do their own buffering; the dispatcher holds no queue.
pub trait Subscriber: Send + Sync {
    /// The most verbose level this subscriber wants, or `None` for none.
    /// Read once at [`install`] time to arm the global fast-path gate.
    fn max_level(&self) -> Option<Level>;

    /// An event fired.
    fn on_event(&self, event: &EventRecord<'_>);

    /// A span was entered.
    fn on_span_enter(&self, span: &SpanRecord<'_>);

    /// A span was exited after `elapsed`.
    fn on_span_exit(&self, span: &SpanRecord<'_>, elapsed: Duration);

    /// Flushes any buffered output (called by [`flush`]).
    fn flush(&self) {}
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

fn subscriber_slot() -> &'static RwLock<Option<Arc<dyn Subscriber>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Subscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Installs `subscriber` as the process-global sink and arms the fast-path
/// gate from its [`Subscriber::max_level`]. Replaces any previous
/// subscriber.
pub fn install(subscriber: Arc<dyn Subscriber>) {
    let level = subscriber.max_level().map_or(0, |l| l as u8);
    *subscriber_slot().write().expect("subscriber lock poisoned") = Some(subscriber);
    MAX_LEVEL.store(level, Ordering::Release);
}

/// Removes the global subscriber: tracing reverts to disabled, the
/// default.
pub fn uninstall() {
    MAX_LEVEL.store(0, Ordering::Release);
    *subscriber_slot().write().expect("subscriber lock poisoned") = None;
}

/// Whether an emission at `level` would reach the installed subscriber.
/// One relaxed atomic load — gate hot-path instrumentation on this.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Flushes the installed subscriber's buffered output, if any.
pub fn flush() {
    if let Some(sub) = subscriber_slot().read().expect("subscriber lock poisoned").as_ref() {
        sub.flush();
    }
}

/// Fires an event. Cheap no-op when `level` is not [`enabled`]; callers
/// whose *fields* are expensive to build should still gate on [`enabled`]
/// themselves.
pub fn event(level: Level, target: &str, message: &str, fields: &[Field]) {
    if !enabled(level) {
        return;
    }
    if let Some(sub) = subscriber_slot().read().expect("subscriber lock poisoned").as_ref() {
        SPAN_STACK.with_borrow(|stack| {
            sub.on_event(&EventRecord { level, target, message, fields, span_path: stack });
        });
    }
}

/// Opens a span: emits the entry immediately and the exit (with elapsed
/// wall time) when the returned guard drops. When `level` is not
/// [`enabled`] the guard is inert and nothing is recorded.
pub fn span(level: Level, name: &'static str, fields: Vec<Field>) -> SpanGuard {
    if !enabled(level) {
        return SpanGuard { active: None };
    }
    SPAN_STACK.with_borrow_mut(|stack| stack.push(name));
    if let Some(sub) = subscriber_slot().read().expect("subscriber lock poisoned").as_ref() {
        SPAN_STACK.with_borrow(|stack| {
            sub.on_span_enter(&SpanRecord { level, name, fields: &fields, span_path: stack });
        });
    }
    SpanGuard { active: Some(ActiveSpan { level, name, fields, start: Instant::now() }) }
}

struct ActiveSpan {
    level: Level,
    name: &'static str,
    fields: Vec<Field>,
    start: Instant,
}

/// RAII guard returned by [`span`]; exiting the scope closes the span.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed();
        if let Some(sub) = subscriber_slot().read().expect("subscriber lock poisoned").as_ref() {
            SPAN_STACK.with_borrow(|stack| {
                sub.on_span_exit(
                    &SpanRecord {
                        level: active.level,
                        name: active.name,
                        fields: &active.fields,
                        span_path: stack,
                    },
                    elapsed,
                );
            });
        }
        SPAN_STACK.with_borrow_mut(|stack| {
            debug_assert_eq!(stack.last(), Some(&active.name), "span guard dropped out of order");
            stack.pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("off").unwrap(), None);
        assert_eq!(Level::parse("debug").unwrap(), Some(Level::Debug));
        assert!(Level::parse("loud").is_err());
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::Warn.to_string(), "warn");
    }

    #[test]
    fn field_conversions() {
        assert_eq!(kv("a", 3u32).value, FieldValue::U64(3));
        assert_eq!(kv("b", -3i32).value, FieldValue::I64(-3));
        assert_eq!(kv("c", 0.5).value, FieldValue::F64(0.5));
        assert_eq!(kv("d", true).value, FieldValue::Bool(true));
        assert_eq!(kv("e", "x").value, FieldValue::Str("x".to_string()));
        assert_eq!(FieldValue::display(17).to_string(), "17");
    }

    #[test]
    fn disabled_by_default() {
        // No subscriber installed in this process at unit-test start: the
        // gate must report disabled and event/span must be inert no-ops.
        assert!(!enabled(Level::Error) || MAX_LEVEL.load(Ordering::Relaxed) > 0);
        event(Level::Trace, "t", "nothing listens", &[]);
        let _guard = span(Level::Trace, "noop", Vec::new());
    }
}
