//! The tracing facade: levels, structured fields, spans, events, span and
//! request identity, and the global dispatcher.
//!
//! The design optimizes for the disabled case: every emission site first
//! checks [`enabled`], a single relaxed atomic load against the maximum
//! level any sink (the installed subscriber or the armed flight recorder)
//! wants. With the [`NullSubscriber`] installed (or nothing installed at
//! all, the default) that check fails and no field formatting, locking, or
//! allocation happens — instrumented hot paths stay within noise of
//! uninstrumented ones.
//!
//! Every entered span is assigned a process-unique [`SpanId`]; its parent
//! is whatever span was innermost on the same thread at entry. A
//! [`RequestId`] can be bound to the current thread with [`request_scope`]
//! so that every span and event emitted while serving one gateway request
//! carries the same causal id.
//!
//! [`NullSubscriber`]: crate::NullSubscriber

use crate::flightrec;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Severity of an event or span, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// The run cannot proceed as requested.
    Error = 1,
    /// Something degraded but the run continues.
    Warn = 2,
    /// Operator-relevant lifecycle milestones (epochs, repairs, runs).
    Info = 3,
    /// Per-decision diagnostics (reuse relaxations, classifications).
    Debug = 4,
    /// Per-slot / per-attempt firehose.
    Trace = 5,
}

impl Level {
    /// Parses the level names accepted by `--log-level` (plus `off`,
    /// returned as `None`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s {
            "off" => Ok(None),
            "error" => Ok(Some(Level::Error)),
            "warn" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            other => Err(format!("unknown log level '{other}' (off|error|warn|info|debug|trace)")),
        }
    }

    /// The lowercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Rebuilds a level from its `u8` repr (used by the flight recorder).
    pub(crate) fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Process-unique identity of one entered span. Ids are allocated from a
/// global counter and never reused within a process; `SpanId(0)` never
/// occurs (0 is the "none" encoding in the flight recorder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// Identity of one externally driven request (a gateway operation, a
/// simulate run). Bound to a thread with [`request_scope`]; every span and
/// event emitted inside the scope carries it. `RequestId(0)` never occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh [`RequestId`] from the global counter.
pub fn next_request_id() -> RequestId {
    RequestId(NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

/// The value of one structured field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (pre-rendered display values included).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! from_int {
    ($($t:ty => $variant:ident as $as:ty),+ $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $as)
            }
        }
    )+};
}

from_int!(i64 => I64 as i64, i32 => I64 as i64, u64 => U64 as u64, u32 => U64 as u64,
          u16 => U64 as u64, usize => U64 as u64);

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    /// Renders any `Display` value into a string field (for link ids, flow
    /// ids, and other domain types this crate cannot know about).
    pub fn display(v: impl fmt::Display) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

/// One structured key/value field attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub key: &'static str,
    /// Field value.
    pub value: FieldValue,
}

/// Shorthand constructor for a [`Field`].
pub fn kv(key: &'static str, value: impl Into<FieldValue>) -> Field {
    Field { key, value: value.into() }
}

/// A fired event as the subscriber sees it.
#[derive(Debug)]
pub struct EventRecord<'a> {
    /// Severity.
    pub level: Level,
    /// Emitting component (module-path-like, e.g. `wsan_core::rc`).
    pub target: &'a str,
    /// Human-readable message.
    pub message: &'a str,
    /// Structured fields.
    pub fields: &'a [Field],
    /// Names of the spans currently open on this thread, outermost first.
    pub span_path: &'a [&'static str],
    /// Id of the innermost open span, if any.
    pub span_id: Option<SpanId>,
    /// The request scope this event fired under, if any.
    pub request: Option<RequestId>,
}

/// An entered or exited span as the subscriber sees it. `span_path`
/// includes the span itself as its last element.
#[derive(Debug)]
pub struct SpanRecord<'a> {
    /// Severity.
    pub level: Level,
    /// Span name.
    pub name: &'static str,
    /// Structured fields recorded at entry.
    pub fields: &'a [Field],
    /// Open spans on this thread, outermost first, this span last.
    pub span_path: &'a [&'static str],
    /// This span's process-unique id.
    pub id: SpanId,
    /// Id of the enclosing span, if any.
    pub parent: Option<SpanId>,
    /// The request scope this span opened under, if any.
    pub request: Option<RequestId>,
}

/// Receives events and span transitions. Implementations must be cheap to
/// call or do their own buffering; the dispatcher holds no queue.
pub trait Subscriber: Send + Sync {
    /// The most verbose level this subscriber wants, or `None` for none.
    /// Read once at [`install`] time to arm the global fast-path gate.
    fn max_level(&self) -> Option<Level>;

    /// An event fired.
    fn on_event(&self, event: &EventRecord<'_>);

    /// A span was entered.
    fn on_span_enter(&self, span: &SpanRecord<'_>);

    /// A span was exited after `elapsed`.
    fn on_span_exit(&self, span: &SpanRecord<'_>, elapsed: Duration);

    /// Flushes any buffered output (called by [`flush`]).
    fn flush(&self) {}
}

/// The combined fast-path gate: max of the subscriber's level and the
/// armed flight recorder's level. [`enabled`] reads only this.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
/// The installed subscriber's own level (dispatch re-checks this so a
/// trace-level flight recorder does not flood an info-level subscriber).
static SUB_LEVEL: AtomicU8 = AtomicU8::new(0);

fn subscriber_slot() -> &'static RwLock<Option<Arc<dyn Subscriber>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Subscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Per-thread span context: parallel name/id stacks (parallel so the
/// subscriber-facing `span_path: &[&'static str]` borrows straight from
/// the stack without per-dispatch allocation) plus the bound request.
#[derive(Default)]
struct ThreadCtx {
    names: Vec<&'static str>,
    ids: Vec<SpanId>,
    request: Option<RequestId>,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::default());
}

/// Recomputes [`MAX_LEVEL`] from the subscriber and flight-recorder
/// levels. Called whenever either side changes.
pub(crate) fn recompute_max_level() {
    let combined = SUB_LEVEL.load(Ordering::Acquire).max(flightrec::armed_level_u8());
    MAX_LEVEL.store(combined, Ordering::Release);
}

/// Installs `subscriber` as the process-global sink and arms the fast-path
/// gate from its [`Subscriber::max_level`]. Replaces any previous
/// subscriber.
pub fn install(subscriber: Arc<dyn Subscriber>) {
    let level = subscriber.max_level().map_or(0, |l| l as u8);
    *subscriber_slot().write().expect("subscriber lock poisoned") = Some(subscriber);
    SUB_LEVEL.store(level, Ordering::Release);
    recompute_max_level();
}

/// Removes the global subscriber: subscriber dispatch reverts to disabled,
/// the default (an armed flight recorder keeps recording).
pub fn uninstall() {
    SUB_LEVEL.store(0, Ordering::Release);
    *subscriber_slot().write().expect("subscriber lock poisoned") = None;
    recompute_max_level();
}

/// Whether an emission at `level` would reach any sink (subscriber or
/// flight recorder). One relaxed atomic load — gate hot-path
/// instrumentation on this.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether the installed subscriber itself wants `level`.
#[inline]
fn sub_enabled(level: Level) -> bool {
    level as u8 <= SUB_LEVEL.load(Ordering::Relaxed)
}

/// Flushes the installed subscriber's buffered output, if any.
pub fn flush() {
    if let Some(sub) = subscriber_slot().read().expect("subscriber lock poisoned").as_ref() {
        sub.flush();
    }
}

/// The [`RequestId`] bound to the current thread, if any.
pub fn current_request() -> Option<RequestId> {
    CTX.with_borrow(|ctx| ctx.request)
}

/// Binds `id` as the current thread's request until the guard drops;
/// nested scopes restore the previous binding. Every span and event
/// emitted inside the scope carries `id`.
pub fn request_scope(id: RequestId) -> RequestGuard {
    let previous = CTX.with_borrow_mut(|ctx| ctx.request.replace(id));
    RequestGuard { previous }
}

/// RAII guard returned by [`request_scope`]; dropping restores the
/// previously bound request (if any).
#[must_use = "dropping the guard immediately unbinds the request"]
pub struct RequestGuard {
    previous: Option<RequestId>,
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CTX.with_borrow_mut(|ctx| ctx.request = previous);
    }
}

/// Fires an event. Cheap no-op when `level` is not [`enabled`]; callers
/// whose *fields* are expensive to build should still gate on [`enabled`]
/// themselves.
pub fn event(level: Level, target: &str, message: &str, fields: &[Field]) {
    if !enabled(level) {
        return;
    }
    CTX.with_borrow(|ctx| {
        let span_id = ctx.ids.last().copied();
        if sub_enabled(level) {
            if let Some(sub) = subscriber_slot().read().expect("subscriber lock poisoned").as_ref()
            {
                sub.on_event(&EventRecord {
                    level,
                    target,
                    message,
                    fields,
                    span_path: &ctx.names,
                    span_id,
                    request: ctx.request,
                });
            }
        }
        flightrec::record_event(level, message, span_id, ctx.request);
    });
}

/// Opens a span: assigns it a fresh [`SpanId`], emits the entry
/// immediately, and emits the exit (with elapsed wall time) when the
/// returned guard drops. When `level` is not [`enabled`] the guard is
/// inert and nothing is recorded.
pub fn span(level: Level, name: &'static str, fields: Vec<Field>) -> SpanGuard {
    if !enabled(level) {
        return SpanGuard { active: None };
    }
    let id = SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed));
    let (parent, request) = CTX.with_borrow_mut(|ctx| {
        let parent = ctx.ids.last().copied();
        ctx.names.push(name);
        ctx.ids.push(id);
        (parent, ctx.request)
    });
    if sub_enabled(level) {
        if let Some(sub) = subscriber_slot().read().expect("subscriber lock poisoned").as_ref() {
            CTX.with_borrow(|ctx| {
                sub.on_span_enter(&SpanRecord {
                    level,
                    name,
                    fields: &fields,
                    span_path: &ctx.names,
                    id,
                    parent,
                    request,
                });
            });
        }
    }
    flightrec::record_span_enter(level, name, id, parent, request);
    SpanGuard {
        active: Some(ActiveSpan {
            level,
            name,
            fields,
            start: Instant::now(),
            id,
            parent,
            request,
        }),
    }
}

struct ActiveSpan {
    level: Level,
    name: &'static str,
    fields: Vec<Field>,
    start: Instant,
    id: SpanId,
    parent: Option<SpanId>,
    request: Option<RequestId>,
}

/// RAII guard returned by [`span`]; exiting the scope closes the span.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// The id assigned to this span, or `None` when the span was disabled.
    pub fn id(&self) -> Option<SpanId> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed();
        if sub_enabled(active.level) {
            if let Some(sub) = subscriber_slot().read().expect("subscriber lock poisoned").as_ref()
            {
                CTX.with_borrow(|ctx| {
                    sub.on_span_exit(
                        &SpanRecord {
                            level: active.level,
                            name: active.name,
                            fields: &active.fields,
                            span_path: &ctx.names,
                            id: active.id,
                            parent: active.parent,
                            request: active.request,
                        },
                        elapsed,
                    );
                });
            }
        }
        flightrec::record_span_exit(
            active.level,
            active.name,
            active.id,
            active.parent,
            active.request,
            elapsed,
        );
        CTX.with_borrow_mut(|ctx| {
            debug_assert_eq!(
                ctx.names.last(),
                Some(&active.name),
                "span guard dropped out of order"
            );
            ctx.names.pop();
            ctx.ids.pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("off").unwrap(), None);
        assert_eq!(Level::parse("debug").unwrap(), Some(Level::Debug));
        assert!(Level::parse("loud").is_err());
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::Warn.to_string(), "warn");
        assert_eq!(Level::from_u8(Level::Trace as u8), Some(Level::Trace));
        assert_eq!(Level::from_u8(0), None);
    }

    #[test]
    fn field_conversions() {
        assert_eq!(kv("a", 3u32).value, FieldValue::U64(3));
        assert_eq!(kv("b", -3i32).value, FieldValue::I64(-3));
        assert_eq!(kv("c", 0.5).value, FieldValue::F64(0.5));
        assert_eq!(kv("d", true).value, FieldValue::Bool(true));
        assert_eq!(kv("e", "x").value, FieldValue::Str("x".to_string()));
        assert_eq!(FieldValue::display(17).to_string(), "17");
    }

    #[test]
    fn disabled_by_default() {
        // No subscriber installed in this process at unit-test start: the
        // gate must report disabled and event/span must be inert no-ops.
        assert!(!enabled(Level::Error) || MAX_LEVEL.load(Ordering::Relaxed) > 0);
        event(Level::Trace, "t", "nothing listens", &[]);
        let _guard = span(Level::Trace, "noop", Vec::new());
    }

    #[test]
    fn request_scope_nests_and_restores() {
        assert_eq!(current_request(), None);
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        {
            let _outer = request_scope(a);
            assert_eq!(current_request(), Some(a));
            {
                let _inner = request_scope(b);
                assert_eq!(current_request(), Some(b));
            }
            assert_eq!(current_request(), Some(a));
        }
        assert_eq!(current_request(), None);
    }
}
