//! HDR-style log-linear histograms with quantile queries.
//!
//! A [`HdrHistogram`] covers the full `u64` range with a fixed layout:
//! values below 64 get exact unit-width buckets, and each further power of
//! two is split into 64 linear sub-buckets, bounding the relative bucket
//! width at 1/64 (~1.6%) everywhere. The layout is identical for every
//! instance, so histograms merge by bucket-wise addition, and recording is
//! a single `fetch_add` on a fixed slot — lock-free and allocation-free.
//!
//! Quantiles (`p50`/`p90`/`p99`/`p999`) are computed on demand by walking
//! the cumulative counts; a reported quantile is the upper bound of the
//! bucket holding the target rank, so it sits within one bucket width of
//! the exact order statistic.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of linear sub-buckets per power-of-two block (2^6).
const SUB_BUCKETS: u64 = 64;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 6;
/// Total fixed bucket count covering all of `u64`:
/// 64 unit buckets plus one 64-sub-bucket block per top bit 6..=63.
const BUCKETS: usize = ((1 + 64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Maps a value to its fixed bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let top = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = top - SUB_BITS;
        let block = (top - SUB_BITS + 1) as u64;
        (block * SUB_BUCKETS + ((v >> shift) - SUB_BUCKETS)) as usize
    }
}

/// The inclusive `[lo, hi]` range of values sharing bucket `idx`.
fn bucket_range(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        (idx, idx)
    } else {
        let block = idx / SUB_BUCKETS; // >= 1
        let pos = idx % SUB_BUCKETS;
        let shift = (block - 1) as u32;
        let lo = (SUB_BUCKETS + pos) << shift;
        // For the topmost block `lo + 2^shift` is exactly 2^64: subtract
        // first so the upper bound lands on `u64::MAX` without overflow.
        let hi = lo + ((1u64 << shift) - 1);
        (lo, hi)
    }
}

#[derive(Debug)]
struct HdrInner {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A mergeable log-linear histogram over `u64` values (typically
/// nanoseconds or microseconds) with bounded relative error.
#[derive(Debug, Clone)]
pub struct HdrHistogram(Arc<HdrInner>);

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

impl HdrHistogram {
    /// Creates an empty histogram. Every instance shares the same fixed
    /// bucket layout, so any two histograms are mergeable.
    pub fn new() -> Self {
        HdrHistogram(Arc::new(HdrInner {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation. Lock-free; no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        inner.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_nanos(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// The inclusive `[lo, hi]` range of values indistinguishable from `v`
    /// (i.e. sharing its bucket). `hi - lo` is the bucket width the
    /// quantile error bound is stated against.
    pub fn equivalent_range(v: u64) -> (u64, u64) {
        bucket_range(bucket_index(v))
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the observation of rank `ceil(q * count)`, clamped to the
    /// recorded maximum. Returns 0 before any observation.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let inner = &self.0;
        let total = inner.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, c) in inner.counts.iter().enumerate() {
            cum = cum.saturating_add(c.load(Ordering::Relaxed));
            if cum >= rank {
                let (_, hi) = bucket_range(idx);
                return hi.min(inner.max.load(Ordering::Relaxed));
            }
        }
        inner.max.load(Ordering::Relaxed)
    }

    /// Adds every observation recorded in `other` into `self`, bucket-wise.
    /// Equivalent (up to bucket resolution) to having recorded the
    /// concatenated observation stream into one histogram.
    pub fn merge_from(&self, other: &HdrHistogram) {
        let a = &self.0;
        let b = &other.0;
        for (dst, src) in a.counts.iter().zip(b.counts.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        a.count.fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
        a.sum.fetch_add(b.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        a.min.fetch_min(b.min.load(Ordering::Relaxed), Ordering::Relaxed);
        a.max.fetch_max(b.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Captures count/sum/min/max and the p50/p90/p99/p999 quantiles.
    pub fn snapshot(&self) -> HdrSnapshot {
        let inner = &self.0;
        let count = inner.count.load(Ordering::Relaxed);
        HdrSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { inner.min.load(Ordering::Relaxed) },
            max: inner.max.load(Ordering::Relaxed),
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            p999: self.value_at_quantile(0.999),
        }
    }

    /// Per-bucket counts for the non-empty buckets (index, count); used by
    /// tests to compare merged layouts.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.0
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n > 0 {
                    Some((i, n))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Point-in-time state of a [`HdrHistogram`]: totals plus the
/// p50/p90/p99/p999 quantiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdrSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 before any observation).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// 50th-percentile value (bucket upper bound).
    pub p50: u64,
    /// 90th-percentile value.
    pub p90: u64,
    /// 99th-percentile value.
    pub p99: u64,
    /// 99.9th-percentile value.
    pub p999: u64,
}

impl HdrSnapshot {
    /// Mean of the observed values, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_self_consistent() {
        let mut last = 0usize;
        for v in (0u64..4096).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx >= last || v < 4096 && idx >= bucket_index(v.saturating_sub(1)));
            last = last.max(idx);
            let (lo, hi) = bucket_range(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} range=({lo},{hi})");
            assert!(idx < BUCKETS);
        }
    }

    #[test]
    fn exact_below_64() {
        let h = HdrHistogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.5), 31);
        assert_eq!(h.value_at_quantile(1.0), 63);
        assert_eq!(HdrHistogram::equivalent_range(17), (17, 17));
    }

    #[test]
    fn quantiles_within_one_bucket_width() {
        let h = HdrHistogram::new();
        let mut vals: Vec<u64> = (0..1000).map(|i| (i * i) % 50_000).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for &(q, name) in &[(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len()) - 1];
            let got = h.value_at_quantile(q);
            let (lo, hi) = HdrHistogram::equivalent_range(exact);
            assert!(got >= lo && got <= hi.min(*vals.last().unwrap()), "{name}: {got} vs {exact}");
        }
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let a = HdrHistogram::new();
        let b = HdrHistogram::new();
        let both = HdrHistogram::new();
        for v in [1u64, 70, 3000, 9] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 70, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.nonzero_buckets(), both.nonzero_buckets());
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = HdrHistogram::new().snapshot();
        assert_eq!(
            snap,
            HdrSnapshot { count: 0, sum: 0, min: 0, max: 0, p50: 0, p90: 0, p99: 0, p999: 0 }
        );
        assert_eq!(snap.mean(), None);
    }
}
