//! Zero-dependency observability for the WSAN stack.
//!
//! Four facilities share this crate:
//!
//! - **Tracing** ([`trace`]): structured spans and events with key/value
//!   fields, dispatched through a process-global [`Subscriber`]. Bundled
//!   subscribers: [`NullSubscriber`] (discard), [`StderrSubscriber`]
//!   (pretty lines), and [`JsonLinesSubscriber`] (one JSON object per
//!   record). With no subscriber installed — the default — every emission
//!   site costs one relaxed atomic load.
//! - **Metrics** ([`metrics`]): named counters, gauges, fixed-bucket
//!   histograms, HDR quantile histograms ([`hdr`], p50/p90/p99/p999), and
//!   monotonic timers in a [`Registry`], snapshotting to
//!   serde-serializable [`MetricsSnapshot`] reports. The global registry
//!   is gated by [`set_metrics_enabled`] (default off), so components skip
//!   instrument creation entirely on uninstrumented runs.
//! - **Span/request context** ([`trace`]): every entered span gets a
//!   process-unique [`SpanId`] with parent/child causality, and
//!   [`request_scope`] binds a [`RequestId`] that every span and event in
//!   the scope carries.
//! - **Flight recorder** ([`flightrec`]): a fixed-capacity lock-free ring
//!   of the most recent span/event records, armed globally with
//!   [`flightrec::arm`], dumped as JSONL on failure or on demand, and
//!   exportable as Chrome `trace_event` JSON for Perfetto.
//!
//! Both facilities are off by default, and instrumented code gates on
//! [`enabled`] / [`metrics_enabled`] before doing any work, so a seeded
//! simulation with observability disabled is bit-identical to an
//! uninstrumented build.
//!
//! ```
//! use std::sync::Arc;
//! use wsan_obs::{kv, Level};
//!
//! // tracing: install a subscriber, then emit spans and events
//! let sink = wsan_obs::SharedBuffer::new();
//! wsan_obs::install(Arc::new(wsan_obs::JsonLinesSubscriber::new(Level::Debug, sink.clone())));
//! {
//!     let _span = wsan_obs::span(Level::Info, "schedule", vec![kv("flows", 12u64)]);
//!     wsan_obs::event(Level::Info, "example", "placed", &[kv("slot", 3u64)]);
//! }
//! wsan_obs::uninstall();
//! assert!(sink.contents().contains("\"placed\""));
//!
//! // metrics: record through cheap handles, snapshot at the end
//! let registry = wsan_obs::metrics::Registry::new();
//! registry.counter("sim.tx").add(7);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["sim.tx"], 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flightrec;
pub mod hdr;
pub mod metrics;
pub mod profile;
pub mod subscribers;
pub mod trace;

pub use flightrec::{chrome_trace, FlightRecord, FlightRecorder};
pub use hdr::{HdrHistogram, HdrSnapshot};
pub use metrics::{
    global as global_metrics, metrics_enabled, set_metrics_enabled, Counter, Gauge, Histogram,
    MetricsSnapshot, Registry, Timer,
};
pub use profile::{PhaseProfile, PhaseProfiler, PhaseTiming};
pub use subscribers::{JsonLinesSubscriber, NullSubscriber, SharedBuffer, StderrSubscriber};
pub use trace::{
    current_request, enabled, event, flush, install, kv, next_request_id, request_scope, span,
    uninstall, EventRecord, Field, FieldValue, Level, RequestId, SpanGuard, SpanId, SpanRecord,
    Subscriber,
};
