//! Bundled [`Subscriber`] implementations: discard, human-readable
//! stderr, and machine-readable JSON lines.

use crate::trace::{EventRecord, Field, FieldValue, Level, SpanRecord, Subscriber};
use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

/// Discards everything. [`max_level`](Subscriber::max_level) is `None`, so
/// installing it leaves the global fast-path gate closed and instrumented
/// code pays only the single atomic check.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    fn max_level(&self) -> Option<Level> {
        None
    }

    fn on_event(&self, _event: &EventRecord<'_>) {}

    fn on_span_enter(&self, _span: &SpanRecord<'_>) {}

    fn on_span_exit(&self, _span: &SpanRecord<'_>, _elapsed: Duration) {}
}

/// Pretty-prints to stderr, one line per record:
/// `LEVEL span.path target: message key=value ...`.
#[derive(Debug)]
pub struct StderrSubscriber {
    max_level: Level,
}

impl StderrSubscriber {
    /// Prints records at `max_level` and more severe.
    pub fn new(max_level: Level) -> Self {
        StderrSubscriber { max_level }
    }

    fn write_line(&self, line: &str) {
        // A failed stderr write is not worth panicking the run over.
        let _ = writeln!(std::io::stderr().lock(), "{line}");
    }
}

fn fmt_fields(out: &mut String, fields: &[Field]) {
    for field in fields {
        out.push(' ');
        out.push_str(field.key);
        out.push('=');
        match &field.value {
            FieldValue::Str(s) => {
                out.push_str(&format!("{s:?}"));
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

fn fmt_span_path(out: &mut String, path: &[&'static str]) {
    if path.is_empty() {
        return;
    }
    out.push(' ');
    out.push_str(&path.join("."));
}

impl Subscriber for StderrSubscriber {
    fn max_level(&self) -> Option<Level> {
        Some(self.max_level)
    }

    fn on_event(&self, event: &EventRecord<'_>) {
        if event.level > self.max_level {
            return;
        }
        let mut line = format!("{:>5}", event.level.as_str().to_uppercase());
        fmt_span_path(&mut line, event.span_path);
        line.push(' ');
        line.push_str(event.target);
        line.push_str(": ");
        line.push_str(event.message);
        fmt_fields(&mut line, event.fields);
        self.write_line(&line);
    }

    fn on_span_enter(&self, span: &SpanRecord<'_>) {
        if span.level > self.max_level {
            return;
        }
        let mut line = format!("{:>5}", span.level.as_str().to_uppercase());
        fmt_span_path(&mut line, span.span_path);
        line.push_str(": enter");
        fmt_fields(&mut line, span.fields);
        self.write_line(&line);
    }

    fn on_span_exit(&self, span: &SpanRecord<'_>, elapsed: Duration) {
        if span.level > self.max_level {
            return;
        }
        let mut line = format!("{:>5}", span.level.as_str().to_uppercase());
        fmt_span_path(&mut line, span.span_path);
        line.push_str(&format!(": exit elapsed_us={}", elapsed.as_micros()));
        self.write_line(&line);
    }
}

/// Writes one JSON object per record to any `Write` sink, e.g.
/// `{"kind":"event","level":"info","target":"wsan_sim::engine",
///   "message":"run complete","span":["sim.run"],"fields":{"reps":40}}`.
pub struct JsonLinesSubscriber<W: Write + Send> {
    max_level: Level,
    sink: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSubscriber<W> {
    /// Emits records at `max_level` and more severe into `sink`.
    pub fn new(max_level: Level, sink: W) -> Self {
        JsonLinesSubscriber { max_level, sink: Mutex::new(sink) }
    }

    /// Consumes the subscriber and returns the sink (tests read it back).
    pub fn into_sink(self) -> W {
        self.sink.into_inner().expect("sink lock poisoned")
    }

    fn write_line(&self, line: &str) {
        let mut sink = self.sink.lock().expect("sink lock poisoned");
        let _ = writeln!(sink, "{line}");
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Infinity literals.
        out.push_str("null");
    }
}

fn push_json_fields(out: &mut String, fields: &[Field]) {
    out.push('{');
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, field.key);
        out.push(':');
        match &field.value {
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => push_json_f64(out, *v),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(v) => push_json_str(out, v),
        }
    }
    out.push('}');
}

fn push_json_span_path(out: &mut String, path: &[&'static str]) {
    out.push('[');
    for (i, name) in path.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, name);
    }
    out.push(']');
}

/// Appends the span/parent/request id fields shared by both span records.
fn push_json_ids(out: &mut String, span: &SpanRecord<'_>) {
    out.push_str(&format!(",\"span_id\":{}", span.id.0));
    if let Some(parent) = span.parent {
        out.push_str(&format!(",\"parent\":{}", parent.0));
    }
    if let Some(req) = span.request {
        out.push_str(&format!(",\"request\":{}", req.0));
    }
}

impl<W: Write + Send> Subscriber for JsonLinesSubscriber<W> {
    fn max_level(&self) -> Option<Level> {
        Some(self.max_level)
    }

    fn on_event(&self, event: &EventRecord<'_>) {
        if event.level > self.max_level {
            return;
        }
        let mut line = String::from("{\"kind\":\"event\",\"level\":");
        push_json_str(&mut line, event.level.as_str());
        line.push_str(",\"target\":");
        push_json_str(&mut line, event.target);
        line.push_str(",\"message\":");
        push_json_str(&mut line, event.message);
        line.push_str(",\"span\":");
        push_json_span_path(&mut line, event.span_path);
        if let Some(id) = event.span_id {
            line.push_str(&format!(",\"span_id\":{}", id.0));
        }
        if let Some(req) = event.request {
            line.push_str(&format!(",\"request\":{}", req.0));
        }
        line.push_str(",\"fields\":");
        push_json_fields(&mut line, event.fields);
        line.push('}');
        self.write_line(&line);
    }

    fn on_span_enter(&self, span: &SpanRecord<'_>) {
        if span.level > self.max_level {
            return;
        }
        let mut line = String::from("{\"kind\":\"span_enter\",\"level\":");
        push_json_str(&mut line, span.level.as_str());
        line.push_str(",\"span\":");
        push_json_span_path(&mut line, span.span_path);
        push_json_ids(&mut line, span);
        line.push_str(",\"fields\":");
        push_json_fields(&mut line, span.fields);
        line.push('}');
        self.write_line(&line);
    }

    fn on_span_exit(&self, span: &SpanRecord<'_>, elapsed: Duration) {
        if span.level > self.max_level {
            return;
        }
        let mut line = String::from("{\"kind\":\"span_exit\",\"level\":");
        push_json_str(&mut line, span.level.as_str());
        line.push_str(",\"span\":");
        push_json_span_path(&mut line, span.span_path);
        push_json_ids(&mut line, span);
        line.push_str(&format!(",\"elapsed_ns\":{}", elapsed.as_nanos()));
        line.push('}');
        self.write_line(&line);
    }

    fn flush(&self) {
        let _ = self.sink.lock().expect("sink lock poisoned").flush();
    }
}

/// A `Write` sink shareable across the subscriber and a test observer.
/// Wrap a `Vec<u8>` in one to read back what a [`JsonLinesSubscriber`]
/// wrote while it is still installed globally.
#[derive(Debug, Default, Clone)]
pub struct SharedBuffer(std::sync::Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// Copies the bytes written so far into a `String` (lossy).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("buffer lock poisoned")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::kv;
    use serde::value::Value;

    /// Parses a JSON line into the vendored serde data model (the vendored
    /// `serde_json` has no `Value` entry point of its own).
    struct JsonDoc(Value);

    impl serde::Deserialize for JsonDoc {
        fn from_value(v: &Value) -> Result<Self, serde::DeError> {
            Ok(JsonDoc(v.clone()))
        }
    }

    fn parse(line: &str) -> Value {
        serde_json::from_str::<JsonDoc>(line).expect("valid json").0
    }

    fn sample_event<'a>(fields: &'a [Field], path: &'a [&'static str]) -> EventRecord<'a> {
        EventRecord {
            level: Level::Info,
            target: "wsan_test",
            message: "hello \"world\"\n",
            fields,
            span_path: path,
            span_id: Some(crate::trace::SpanId(11)),
            request: Some(crate::trace::RequestId(4)),
        }
    }

    #[test]
    fn json_lines_escape_and_structure() {
        let sub = JsonLinesSubscriber::new(Level::Debug, Vec::new());
        let fields = vec![
            kv("n", 3u64),
            kv("x", 0.5),
            kv("ok", true),
            kv("who", "a\"b"),
            kv("nan", f64::NAN),
        ];
        sub.on_event(&sample_event(&fields, &["outer", "inner"]));
        let out = String::from_utf8(sub.into_sink()).unwrap();
        let parsed = parse(out.lines().next().unwrap());
        assert_eq!(parsed.get("kind"), Some(&Value::Str("event".into())));
        assert_eq!(parsed.get("level"), Some(&Value::Str("info".into())));
        assert_eq!(parsed.get("message"), Some(&Value::Str("hello \"world\"\n".into())));
        let span = parsed.get("span").and_then(Value::as_seq).unwrap();
        assert_eq!(span, [Value::Str("outer".into()), Value::Str("inner".into())]);
        assert_eq!(parsed.get("span_id"), Some(&Value::Int(11)));
        assert_eq!(parsed.get("request"), Some(&Value::Int(4)));
        let fields_obj = parsed.get("fields").unwrap();
        assert_eq!(fields_obj.as_map().unwrap().len(), 5);
        assert_eq!(fields_obj.get("n"), Some(&Value::Int(3)));
        assert_eq!(fields_obj.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(fields_obj.get("who"), Some(&Value::Str("a\"b".into())));
        // NaN must degrade to null, not break the JSON line
        assert_eq!(fields_obj.get("nan"), Some(&Value::Null));
    }

    #[test]
    fn json_lines_filters_by_level() {
        let sub = JsonLinesSubscriber::new(Level::Warn, Vec::new());
        sub.on_event(&sample_event(&[], &[]));
        assert!(sub.into_sink().is_empty());
    }

    #[test]
    fn null_subscriber_reports_no_level() {
        assert_eq!(NullSubscriber.max_level(), None);
    }

    #[test]
    fn shared_buffer_reads_back() {
        let buf = SharedBuffer::new();
        let sub = JsonLinesSubscriber::new(Level::Trace, buf.clone());
        sub.on_span_exit(
            &SpanRecord {
                level: Level::Info,
                name: "s",
                fields: &[],
                span_path: &["s"],
                id: crate::trace::SpanId(2),
                parent: Some(crate::trace::SpanId(1)),
                request: None,
            },
            Duration::from_nanos(42),
        );
        sub.flush();
        let text = buf.contents();
        assert!(text.contains("\"kind\":\"span_exit\""));
        assert!(text.contains("\"span_id\":2"));
        assert!(text.contains("\"parent\":1"));
        assert!(text.contains("\"elapsed_ns\":42"));
    }
}
