//! Metrics: counters, gauges, fixed-bucket histograms, and monotonic
//! timers, registered by name and snapshotted into serde-serializable
//! reports.
//!
//! Handles are cheap `Arc`-backed clones; recording is lock-free atomics.
//! Instrument *creation* goes through a [`Registry`] (a short write-lock),
//! so callers create handles once per run and record through them in hot
//! loops. The global registry is gated by [`set_metrics_enabled`]: when
//! disabled (the default), callers skip building their handle structs and
//! pay nothing.

use crate::hdr::{HdrHistogram, HdrSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing; an implicit
    /// overflow bucket catches everything above the last bound.
    bounds: Vec<f64>,
    /// One slot per finite bucket plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, accumulated as f64 bits via CAS.
    sum_bits: AtomicU64,
}

/// A histogram with fixed bucket upper bounds set at creation.
///
/// An observation lands in the first bucket whose upper bound is `>=` the
/// value; values above every bound land in the implicit overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(mut bounds: Vec<f64>) -> Self {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one observation. NaN observations are dropped.
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let inner = &self.0;
        let idx = inner.bounds.partition_point(|&b| b < v);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            buckets: inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: inner.count.load(Ordering::Relaxed),
            sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

#[derive(Debug)]
struct TimerInner {
    count: AtomicU64,
    total_nanos: AtomicU64,
}

/// Accumulates wall-clock durations: total time and number of timed
/// sections.
#[derive(Debug, Clone)]
pub struct Timer(Arc<TimerInner>);

impl Timer {
    /// Starts timing; the section is recorded when the guard drops.
    pub fn start(&self) -> TimerGuard {
        TimerGuard { timer: self.clone(), started: Instant::now() }
    }

    /// Records an already-measured duration.
    pub fn record(&self, elapsed: std::time::Duration) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.0.total_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of recorded sections.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// RAII guard from [`Timer::start`].
#[must_use = "dropping the guard records the elapsed time immediately"]
pub struct TimerGuard {
    timer: Timer,
    started: Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.timer.record(self.started.elapsed());
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    quantiles: BTreeMap<String, HdrHistogram>,
    timers: BTreeMap<String, Timer>,
}

/// A named collection of instruments.
///
/// `counter`/`gauge`/`histogram`/`timer` return the existing instrument
/// when the name was already registered (for histograms, the registered
/// bounds win), so independent call sites agree on one instrument per
/// name.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given finite bucket upper bounds on first use (an overflow bucket is
    /// implicit). Later calls reuse the originally registered bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .clone()
    }

    /// Returns the HDR quantile histogram registered under `name`, creating
    /// it on first use. All quantile histograms share one fixed log-linear
    /// layout (see [`HdrHistogram`]), so no bounds are supplied.
    pub fn quantile(&self, name: &str) -> HdrHistogram {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        inner.quantiles.entry(name.to_string()).or_default().clone()
    }

    /// Returns the timer registered under `name`, creating it on first use.
    pub fn timer(&self, name: &str) -> Timer {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        inner
            .timers
            .entry(name.to_string())
            .or_insert_with(|| {
                Timer(Arc::new(TimerInner {
                    count: AtomicU64::new(0),
                    total_nanos: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Captures the current value of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().expect("registry lock poisoned");
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
            quantiles: inner.quantiles.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
            timers: inner
                .timers
                .iter()
                .map(|(k, t)| {
                    (
                        k.clone(),
                        TimerSnapshot {
                            count: t.0.count.load(Ordering::Relaxed),
                            total_nanos: t.0.total_nanos.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Drops every registered instrument (used by tests; live handles keep
    /// recording into detached instruments).
    pub fn clear(&self) {
        *self.inner.write().expect("registry lock poisoned") = RegistryInner::default();
    }
}

/// Point-in-time state of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; one entry per bound plus the final
    /// overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean of the observed values, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Point-in-time state of a [`Timer`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerSnapshot {
    /// Number of timed sections.
    pub count: u64,
    /// Total wall-clock time across all sections, in nanoseconds.
    pub total_nanos: u64,
}

/// Serializable snapshot of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// HDR quantile-histogram states by name (p50/p90/p99/p999).
    pub quantiles: BTreeMap<String, HdrSnapshot>,
    /// Timer states by name.
    pub timers: BTreeMap<String, TimerSnapshot>,
}

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global metrics collection on or off (default: off). Components
/// check [`metrics_enabled`] before creating their instrument handles, so
/// disabled runs never touch the registry.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Release);
}

/// Whether global metrics collection is on.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry (exists regardless of the enabled flag;
/// the flag only gates whether components bother to use it).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("tx");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // same name returns the same underlying instrument
        assert_eq!(reg.counter("tx").get(), 5);

        let g = reg.gauge("prr");
        g.set(0.93);
        assert_eq!(reg.gauge("prr").get(), 0.93);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 5.0]);
        // exactly on a bound lands in that bound's bucket (le semantics)
        h.observe(1.0);
        h.observe(0.5);
        h.observe(2.0);
        h.observe(2.0001);
        h.observe(100.0); // overflow
        h.observe(f64::NAN); // dropped
        let snap = reg.snapshot().histograms["lat"].clone();
        assert_eq!(snap.bounds, vec![1.0, 2.0, 5.0]);
        assert_eq!(snap.buckets, vec![2, 1, 1, 1]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 105.5001).abs() < 1e-9);
        assert!((snap.mean().unwrap() - 105.5001 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[5.0, 1.0, 5.0, f64::INFINITY]);
        h.observe(3.0);
        let snap = reg.snapshot().histograms["h"].clone();
        assert_eq!(snap.bounds, vec![1.0, 5.0]);
        assert_eq!(snap.buckets, vec![0, 1, 0]);
    }

    #[test]
    fn timer_accumulates() {
        let reg = Registry::new();
        let t = reg.timer("phase");
        {
            let _g = t.start();
        }
        t.record(std::time::Duration::from_nanos(250));
        let snap = reg.snapshot();
        let ts = &snap.timers["phase"];
        assert_eq!(ts.count, 2);
        assert!(ts.total_nanos >= 250);
    }

    #[test]
    fn snapshot_is_independent_of_later_recording() {
        let reg = Registry::new();
        let c = reg.counter("n");
        c.inc();
        let snap = reg.snapshot();
        c.inc();
        assert_eq!(snap.counters["n"], 1);
        assert_eq!(reg.snapshot().counters["n"], 2);
    }

    #[test]
    fn enabled_flag_defaults_off() {
        // Other tests must not flip the global flag; components rely on the
        // off default to skip instrumentation.
        assert!(!metrics_enabled() || METRICS_ENABLED.load(Ordering::Relaxed));
    }
}
