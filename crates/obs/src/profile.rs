//! Per-phase wall-clock profiling for campaign and figure binaries.
//!
//! A [`PhaseProfiler`] accumulates named, ordered phases (`"build
//! topologies"`, `"simulate"`, `"write csv"`); the finished
//! [`PhaseProfile`] serializes into the run's metrics report and renders a
//! human-readable summary for the binary's stderr.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One completed phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase name, unique within a profile run (repeat names accumulate).
    pub name: String,
    /// Total wall-clock time spent in the phase, in nanoseconds.
    pub total_nanos: u64,
    /// How many times the phase ran.
    pub count: u64,
}

impl PhaseTiming {
    /// Total time in seconds.
    pub fn seconds(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }
}

/// Serializable record of a binary's phases, in first-start order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Completed phases in the order each was first started.
    pub phases: Vec<PhaseTiming>,
}

impl PhaseProfile {
    /// Total wall-clock time across all phases, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(PhaseTiming::seconds).sum()
    }

    /// Renders a per-phase summary table, one line per phase plus a total.
    pub fn render(&self) -> String {
        let mut out = String::from("phase timings:\n");
        for p in &self.phases {
            out.push_str(&format!("  {:<28} {:>9.3}s", p.name, p.seconds()));
            if p.count > 1 {
                out.push_str(&format!("  ({}x)", p.count));
            }
            out.push('\n');
        }
        out.push_str(&format!("  {:<28} {:>9.3}s\n", "total", self.total_seconds()));
        out
    }
}

/// Accumulates phase timings as a binary runs.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Vec<PhaseTiming>,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Starts a phase; it ends when the returned guard drops. Re-using a
    /// name accumulates into the existing phase.
    pub fn phase(&mut self, name: &str) -> PhaseGuard<'_> {
        PhaseGuard { profiler: self, name: name.to_string(), started: Instant::now() }
    }

    /// Times `f` as one phase and returns its result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let _guard = self.phase(name);
        f()
    }

    fn record(&mut self, name: String, nanos: u64) {
        if let Some(existing) = self.phases.iter_mut().find(|p| p.name == name) {
            existing.total_nanos = existing.total_nanos.saturating_add(nanos);
            existing.count += 1;
        } else {
            self.phases.push(PhaseTiming { name, total_nanos: nanos, count: 1 });
        }
    }

    /// Finishes profiling and returns the accumulated profile.
    pub fn finish(self) -> PhaseProfile {
        PhaseProfile { phases: self.phases }
    }
}

/// RAII guard from [`PhaseProfiler::phase`].
#[must_use = "dropping the guard ends the phase immediately"]
pub struct PhaseGuard<'a> {
    profiler: &'a mut PhaseProfiler,
    name: String,
    started: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.profiler.record(std::mem::take(&mut self.name), nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut prof = PhaseProfiler::new();
        prof.time("build", || std::thread::sleep(std::time::Duration::from_millis(1)));
        prof.time("sim", || {});
        prof.time("build", || {});
        let profile = prof.finish();
        assert_eq!(profile.phases.len(), 2);
        assert_eq!(profile.phases[0].name, "build");
        assert_eq!(profile.phases[0].count, 2);
        assert_eq!(profile.phases[1].name, "sim");
        assert!(profile.phases[0].total_nanos >= 1_000_000);
        let rendered = profile.render();
        assert!(rendered.contains("build"));
        assert!(rendered.contains("(2x)"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn profile_serde_round_trip() {
        let profile = PhaseProfile {
            phases: vec![PhaseTiming { name: "x".into(), total_nanos: 123, count: 1 }],
        };
        let json = serde_json::to_string(&profile).unwrap();
        let back: PhaseProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
    }
}
