//! The flight recorder: a fixed-capacity lock-free ring buffer of the most
//! recent span/event records, kept off the hot path and dumped on demand
//! (request errors, schedule inconsistencies, panics, or operator query).
//!
//! # Memory layout and write protocol
//!
//! The ring is a fixed `Vec` of slots; every slot is a handful of
//! `AtomicU64` fields plus a `state` word used as a seqlock version:
//!
//! * a writer claims a global ticket with `head.fetch_add(1)` and owns slot
//!   `ticket % capacity`;
//! * it stores `2·ticket + 1` (odd = write in progress) into `state`,
//!   writes the payload fields, then stores `2·ticket + 2` (even =
//!   complete, encodes the ticket);
//! * a dump reader loads `state`, skips odd/empty slots, reads the payload,
//!   re-loads `state`, and keeps the record only if the two loads match —
//!   a record can be lost to a concurrent overwrite but never observed
//!   torn.
//!
//! Recording is wait-free per record and allocation-free in steady state:
//! span/event names are interned once (cold path, short lock) into `u32`
//! indices so the hot path stores only integers.

use crate::trace::{Level, RequestId, SpanId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Hard cap on distinct interned names; pathological dynamic names beyond
/// the cap all map to index 0 (`"<other>"`).
const MAX_NAMES: usize = 4096;

/// What a ring record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A fired event.
    Event,
    /// A span entry.
    SpanEnter,
    /// A span exit; `dur_ns` carries the elapsed time.
    SpanExit,
}

impl RecordKind {
    fn as_u64(self) -> u64 {
        match self {
            RecordKind::Event => 0,
            RecordKind::SpanEnter => 1,
            RecordKind::SpanExit => 2,
        }
    }

    fn from_u64(v: u64) -> RecordKind {
        match v {
            1 => RecordKind::SpanEnter,
            2 => RecordKind::SpanExit,
            _ => RecordKind::Event,
        }
    }

    /// Lowercase wire name used in JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Event => "event",
            RecordKind::SpanEnter => "span_enter",
            RecordKind::SpanExit => "span_exit",
        }
    }
}

/// One ring slot: a seqlock `state` word plus the payload fields.
struct Slot {
    /// 0 = never written; odd = writer active; even > 0 = complete record
    /// for ticket `(state - 2) / 2`.
    state: AtomicU64,
    /// Nanoseconds since the recorder's epoch.
    t_ns: AtomicU64,
    /// Packed `kind | level << 8 | name_idx << 32`.
    meta: AtomicU64,
    /// Span id (0 = none).
    span: AtomicU64,
    /// Parent span id (0 = none).
    parent: AtomicU64,
    /// Request id (0 = none).
    request: AtomicU64,
    /// Span-exit duration in nanoseconds (0 otherwise).
    dur_ns: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            request: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

/// Interns names to dense `u32` indices; lookup takes a shared read lock
/// (uncontended in steady state), insertion a short write lock.
struct NameTable {
    map: RwLock<HashMap<String, u32>>,
    list: RwLock<Vec<String>>,
}

impl NameTable {
    fn new() -> NameTable {
        NameTable {
            map: RwLock::new(HashMap::from([("<other>".to_string(), 0u32)])),
            list: RwLock::new(vec!["<other>".to_string()]),
        }
    }

    fn intern(&self, name: &str) -> u32 {
        if let Some(&idx) = self.map.read().expect("name map poisoned").get(name) {
            return idx;
        }
        let mut map = self.map.write().expect("name map poisoned");
        if let Some(&idx) = map.get(name) {
            return idx;
        }
        let mut list = self.list.write().expect("name list poisoned");
        if list.len() >= MAX_NAMES {
            return 0;
        }
        let idx = list.len() as u32;
        list.push(name.to_string());
        map.insert(name.to_string(), idx);
        idx
    }

    fn get(&self, idx: u32) -> String {
        let list = self.list.read().expect("name list poisoned");
        list.get(idx as usize).cloned().unwrap_or_else(|| "<other>".to_string())
    }
}

/// A fixed-capacity lock-free ring of recent span/event records.
pub struct FlightRecorder {
    epoch: Instant,
    head: AtomicU64,
    slots: Vec<Slot>,
    names: NameTable,
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` records
    /// (minimum 16).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(16);
        FlightRecorder {
            epoch: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            names: NameTable::new(),
        }
    }

    /// Ring capacity (the N in "most recent N records").
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Writes one record. Wait-free; allocation-free once `name` has been
    /// interned.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kind: RecordKind,
        level: Level,
        name: &str,
        span: Option<SpanId>,
        parent: Option<SpanId>,
        request: Option<RequestId>,
        dur_ns: u64,
    ) {
        let name_idx = self.names.intern(name);
        let t_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.state.store(2 * ticket + 1, Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.meta.store(
            kind.as_u64() | (level as u64) << 8 | u64::from(name_idx) << 32,
            Ordering::Relaxed,
        );
        slot.span.store(span.map_or(0, |s| s.0), Ordering::Relaxed);
        slot.parent.store(parent.map_or(0, |s| s.0), Ordering::Relaxed);
        slot.request.store(request.map_or(0, |r| r.0), Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.state.store(2 * ticket + 2, Ordering::Release);
    }

    /// Snapshots the ring: every complete, un-torn record, oldest first.
    /// Records being overwritten concurrently are skipped, never torn.
    pub fn dump(&self) -> Vec<FlightRecord> {
        let mut out: Vec<(u64, FlightRecord)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let s1 = slot.state.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let span = slot.span.load(Ordering::Relaxed);
            let parent = slot.parent.load(Ordering::Relaxed);
            let request = slot.request.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            let s2 = slot.state.load(Ordering::Acquire);
            if s1 != s2 {
                continue;
            }
            let ticket = (s1 - 2) / 2;
            let kind = RecordKind::from_u64(meta & 0xff);
            let level = Level::from_u8(((meta >> 8) & 0xff) as u8).unwrap_or(Level::Trace);
            let name = self.names.get((meta >> 32) as u32);
            out.push((
                ticket,
                FlightRecord {
                    seq: ticket,
                    t_ns,
                    kind: kind.as_str().to_string(),
                    level: level.as_str().to_string(),
                    name,
                    span,
                    parent,
                    request,
                    dur_ns,
                },
            ));
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Renders the current ring contents as JSON lines (one record per
    /// line, oldest first).
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.dump() {
            out.push_str(&serde_json::to_string(&record).expect("flight record serializes"));
            out.push('\n');
        }
        out
    }
}

/// One decoded flight-recorder record (the JSONL dump row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Global write sequence number (monotone across the process).
    pub seq: u64,
    /// Nanoseconds since the recorder was armed.
    pub t_ns: u64,
    /// `event`, `span_enter`, or `span_exit`.
    pub kind: String,
    /// Severity name.
    pub level: String,
    /// Span name or event message.
    pub name: String,
    /// Span id (0 = none).
    pub span: u64,
    /// Parent span id (0 = none).
    pub parent: u64,
    /// Request id (0 = none).
    pub request: u64,
    /// Elapsed nanoseconds for `span_exit` records (0 otherwise).
    pub dur_ns: u64,
}

/// Renders flight records as Chrome `trace_event` JSON (the object form:
/// `{"traceEvents": [...]}`), loadable in chrome://tracing and Perfetto.
/// `span_exit` records become complete (`"ph":"X"`) slices spanning the
/// measured duration; events become instants (`"ph":"i"`). The thread id
/// is the request id so one request reads as one track.
pub fn chrome_trace(records: &[FlightRecord]) -> String {
    use serde::value::Value;
    let mut events: Vec<Value> = Vec::new();
    for r in records {
        let (ph, ts_ns, dur_us) = match r.kind.as_str() {
            "span_exit" => ("X", r.t_ns.saturating_sub(r.dur_ns), Some(r.dur_ns as f64 / 1e3)),
            "event" => ("i", r.t_ns, None),
            // span_enter carries no interval; the matching exit already
            // renders the full slice.
            _ => continue,
        };
        let mut obj: Vec<(String, Value)> = vec![
            ("name".to_string(), Value::Str(r.name.clone())),
            ("cat".to_string(), Value::Str(r.level.clone())),
            ("ph".to_string(), Value::Str(ph.to_string())),
            ("ts".to_string(), Value::Float(ts_ns as f64 / 1e3)),
            ("pid".to_string(), Value::UInt(1)),
            ("tid".to_string(), Value::UInt(r.request.max(1))),
        ];
        if let Some(dur) = dur_us {
            obj.push(("dur".to_string(), Value::Float(dur)));
        }
        if ph == "i" {
            obj.push(("s".to_string(), Value::Str("t".to_string())));
        }
        obj.push((
            "args".to_string(),
            Value::Map(vec![
                ("seq".to_string(), Value::UInt(r.seq)),
                ("span".to_string(), Value::UInt(r.span)),
                ("parent".to_string(), Value::UInt(r.parent)),
                ("request".to_string(), Value::UInt(r.request)),
            ]),
        ));
        events.push(Value::Map(obj));
    }
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ]);
    serde_json::to_string(&doc).expect("chrome trace serializes")
}

static ARMED_LEVEL: AtomicU8 = AtomicU8::new(0);

fn armed_slot() -> &'static RwLock<Option<Arc<FlightRecorder>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<FlightRecorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Arms a process-global flight recorder capturing records up to `level`
/// into a ring of `capacity` slots, and returns it. Replaces any
/// previously armed recorder.
pub fn arm(capacity: usize, level: Level) -> Arc<FlightRecorder> {
    let recorder = Arc::new(FlightRecorder::new(capacity));
    *armed_slot().write().expect("flightrec lock poisoned") = Some(Arc::clone(&recorder));
    ARMED_LEVEL.store(level as u8, Ordering::Release);
    crate::trace::recompute_max_level();
    recorder
}

/// Disarms the global flight recorder (existing handles keep working).
pub fn disarm() {
    ARMED_LEVEL.store(0, Ordering::Release);
    *armed_slot().write().expect("flightrec lock poisoned") = None;
    crate::trace::recompute_max_level();
}

/// The armed global recorder, if any.
pub fn armed() -> Option<Arc<FlightRecorder>> {
    armed_slot().read().expect("flightrec lock poisoned").clone()
}

/// The armed recorder's level as a raw `u8` (0 = disarmed); feeds the
/// combined fast-path gate in `trace`.
pub(crate) fn armed_level_u8() -> u8 {
    ARMED_LEVEL.load(Ordering::Acquire)
}

#[inline]
fn rec_enabled(level: Level) -> bool {
    level as u8 <= ARMED_LEVEL.load(Ordering::Relaxed)
}

/// Records an event into the armed recorder, if any wants `level`.
pub(crate) fn record_event(
    level: Level,
    message: &str,
    span: Option<SpanId>,
    request: Option<RequestId>,
) {
    if !rec_enabled(level) {
        return;
    }
    if let Some(rec) = armed_slot().read().expect("flightrec lock poisoned").as_ref() {
        rec.record(RecordKind::Event, level, message, span, None, request, 0);
    }
}

/// Records a span entry into the armed recorder, if any wants `level`.
pub(crate) fn record_span_enter(
    level: Level,
    name: &'static str,
    id: SpanId,
    parent: Option<SpanId>,
    request: Option<RequestId>,
) {
    if !rec_enabled(level) {
        return;
    }
    if let Some(rec) = armed_slot().read().expect("flightrec lock poisoned").as_ref() {
        rec.record(RecordKind::SpanEnter, level, name, Some(id), parent, request, 0);
    }
}

/// Records a span exit into the armed recorder, if any wants `level`.
pub(crate) fn record_span_exit(
    level: Level,
    name: &'static str,
    id: SpanId,
    parent: Option<SpanId>,
    request: Option<RequestId>,
    elapsed: std::time::Duration,
) {
    if !rec_enabled(level) {
        return;
    }
    if let Some(rec) = armed_slot().read().expect("flightrec lock poisoned").as_ref() {
        let dur_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        rec.record(RecordKind::SpanExit, level, name, Some(id), parent, request, dur_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_the_ring() {
        let rec = FlightRecorder::new(32);
        rec.record(
            RecordKind::SpanEnter,
            Level::Debug,
            "gw.request",
            Some(SpanId(7)),
            None,
            Some(RequestId(3)),
            0,
        );
        rec.record(
            RecordKind::Event,
            Level::Info,
            "admitted",
            Some(SpanId(7)),
            None,
            Some(RequestId(3)),
            0,
        );
        rec.record(
            RecordKind::SpanExit,
            Level::Debug,
            "gw.request",
            Some(SpanId(7)),
            None,
            Some(RequestId(3)),
            1234,
        );
        let dump = rec.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].kind, "span_enter");
        assert_eq!(dump[1].name, "admitted");
        assert_eq!(dump[2].dur_ns, 1234);
        assert_eq!(dump[2].request, 3);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn wraparound_keeps_most_recent_capacity_records() {
        let rec = FlightRecorder::new(16);
        for i in 0..100u64 {
            rec.record(RecordKind::Event, Level::Info, "e", Some(SpanId(i + 1)), None, None, i);
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 16);
        let seqs: Vec<u64> = dump.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (84..100).collect::<Vec<_>>());
        assert!(dump.iter().all(|r| r.dur_ns == r.seq));
    }

    #[test]
    fn name_table_caps_at_max_names() {
        let table = NameTable::new();
        assert_eq!(table.intern("a"), table.intern("a"));
        let idx = table.intern("b");
        assert_eq!(table.get(idx), "b");
        assert_eq!(table.get(999_999), "<other>");
    }

    #[test]
    fn chrome_trace_shapes_events_and_slices() {
        let records = vec![
            FlightRecord {
                seq: 0,
                t_ns: 5_000,
                kind: "span_exit".to_string(),
                level: "debug".to_string(),
                name: "gw.request".to_string(),
                span: 1,
                parent: 0,
                request: 9,
                dur_ns: 4_000,
            },
            FlightRecord {
                seq: 1,
                t_ns: 6_000,
                kind: "event".to_string(),
                level: "info".to_string(),
                name: "admitted".to_string(),
                span: 1,
                parent: 0,
                request: 9,
                dur_ns: 0,
            },
        ];
        let json = chrome_trace(&records);
        let doc: serde::value::Value = serde_json::from_str(&json).expect("chrome trace parses");
        let events = doc.get("traceEvents").expect("traceEvents present");
        let items = events.as_seq().expect("traceEvents is a list");
        assert_eq!(items.len(), 2);
        assert!(json.contains("\"ph\": \"X\"") || json.contains("\"ph\":\"X\""));
    }
}
