//! Property-based invariants of the HDR quantile histogram: reported
//! quantiles stay within one bucket width of the exact order statistic,
//! and merging histograms is indistinguishable from recording the
//! concatenated stream.

use proptest::prelude::*;
use wsan_obs::HdrHistogram;

/// Random observation streams mixing small exact-bucket values with
/// values from every log-linear block up to ~2^40.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u32..41, 0u64..1_000_000), 1..400).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(shift, raw)| {
                let base = 1u64 << shift;
                base.saturating_add(raw % base.max(1))
            })
            .collect()
    })
}

/// The exact order statistic of rank `ceil(q * n)` (1-based, clamped).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reported quantile lies within the bucket of the exact order
    /// statistic (relative error bounded by the 1/64 bucket width), never
    /// above the recorded maximum.
    #[test]
    fn quantiles_are_within_one_bucket_of_exact(samples in arb_samples()) {
        let h = HdrHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let max = *sorted.last().expect("non-empty");
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = h.value_at_quantile(q);
            let (lo, hi) = HdrHistogram::equivalent_range(exact);
            prop_assert!(
                got >= lo && got <= hi.min(max),
                "q={q}: got {got}, exact {exact}, bucket [{lo},{hi}], max {max}"
            );
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let snap = h.snapshot();
        prop_assert_eq!(snap.min, *sorted.first().expect("non-empty"));
        prop_assert_eq!(snap.max, max);
        prop_assert_eq!(snap.sum, samples.iter().copied().map(u128::from).sum::<u128>() as u64);
    }

    /// merge(a, b) is bucket-identical to recording a ++ b into one
    /// histogram — same buckets, same snapshot, same quantiles.
    #[test]
    fn merge_equals_concatenated_stream(a in arb_samples(), b in arb_samples()) {
        let ha = HdrHistogram::new();
        let hb = HdrHistogram::new();
        let concat = HdrHistogram::new();
        for &v in &a {
            ha.record(v);
            concat.record(v);
        }
        for &v in &b {
            hb.record(v);
            concat.record(v);
        }
        ha.merge_from(&hb);
        prop_assert_eq!(ha.nonzero_buckets(), concat.nonzero_buckets());
        prop_assert_eq!(ha.snapshot(), concat.snapshot());
        for &q in &[0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.value_at_quantile(q), concat.value_at_quantile(q));
        }
    }

    /// The bucket invariant behind the error bound: every value maps to a
    /// bucket containing it, with width at most 1/64 of the value.
    #[test]
    fn equivalent_range_contains_value_with_bounded_width(v in 0u64..=u64::MAX) {
        let (lo, hi) = HdrHistogram::equivalent_range(v);
        prop_assert!(lo <= v && v <= hi);
        if v >= 64 {
            let width = hi - lo;
            prop_assert!(u128::from(width) * 64 <= u128::from(v) * 2, "width {width} too wide for {v}");
        } else {
            prop_assert_eq!(lo, hi);
        }
    }
}
