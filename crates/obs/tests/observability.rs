//! Integration tests exercising the global dispatcher and serializable
//! snapshots together. These run in their own process, so installing the
//! process-global subscriber cannot interfere with unit tests.

use serde::value::Value;
use std::sync::{Arc, Mutex, OnceLock};
use wsan_obs::{kv, Level};

/// Tests in this file share the process-global subscriber slot; serialize
/// them.
fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().expect("test lock poisoned")
}

struct JsonDoc(Value);

impl serde::Deserialize for JsonDoc {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        Ok(JsonDoc(v.clone()))
    }
}

fn parse_lines(text: &str) -> Vec<Value> {
    text.lines().map(|l| serde_json::from_str::<JsonDoc>(l).expect("valid json line").0).collect()
}

fn str_field<'a>(v: &'a Value, key: &str) -> &'a str {
    match v.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("field {key}: expected string, got {other:?}"),
    }
}

fn span_path(v: &Value) -> Vec<String> {
    v.get("span")
        .and_then(Value::as_seq)
        .expect("span array")
        .iter()
        .map(|s| match s {
            Value::Str(name) => name.clone(),
            other => panic!("span element: {other:?}"),
        })
        .collect()
}

#[test]
fn json_subscriber_preserves_span_nesting_order() {
    let _guard = global_lock();
    let sink = wsan_obs::SharedBuffer::new();
    wsan_obs::install(Arc::new(wsan_obs::JsonLinesSubscriber::new(Level::Trace, sink.clone())));

    {
        let _outer = wsan_obs::span(Level::Info, "campaign", vec![kv("sets", 3u64)]);
        wsan_obs::event(Level::Info, "test", "at depth one", &[]);
        {
            let _inner = wsan_obs::span(Level::Debug, "simulate", vec![kv("seed", 42u64)]);
            wsan_obs::event(Level::Debug, "test", "at depth two", &[kv("slot", 7u64)]);
        }
        wsan_obs::event(Level::Info, "test", "back at depth one", &[]);
    }
    wsan_obs::event(Level::Info, "test", "outside", &[]);
    wsan_obs::uninstall();

    let records = parse_lines(&sink.contents());
    let kinds: Vec<&str> = records.iter().map(|r| str_field(r, "kind")).collect();
    assert_eq!(
        kinds,
        [
            "span_enter", // campaign
            "event",      // at depth one
            "span_enter", // simulate
            "event",      // at depth two
            "span_exit",  // simulate
            "event",      // back at depth one
            "span_exit",  // campaign
            "event",      // outside
        ]
    );

    // the span path on each record reflects nesting at emission time
    assert_eq!(span_path(&records[0]), ["campaign"]);
    assert_eq!(span_path(&records[1]), ["campaign"]);
    assert_eq!(span_path(&records[2]), ["campaign", "simulate"]);
    assert_eq!(span_path(&records[3]), ["campaign", "simulate"]);
    assert_eq!(span_path(&records[4]), ["campaign", "simulate"]);
    assert_eq!(span_path(&records[5]), ["campaign"]);
    assert_eq!(span_path(&records[6]), ["campaign"]);
    assert_eq!(span_path(&records[7]), Vec::<String>::new());

    // span exits carry elapsed time
    assert!(records[4].get("elapsed_ns").is_some());

    // entry fields survive to the subscriber
    assert_eq!(records[2].get("fields").and_then(|f| f.get("seed")), Some(&Value::Int(42)));
}

#[test]
fn uninstalled_tracing_emits_nothing_and_costs_no_panic() {
    let _guard = global_lock();
    wsan_obs::uninstall();
    assert!(!wsan_obs::enabled(Level::Error));
    wsan_obs::event(Level::Error, "test", "dropped", &[kv("x", 1u64)]);
    let _span = wsan_obs::span(Level::Error, "dropped-span", vec![]);
}

#[test]
fn metrics_snapshot_serde_round_trip() {
    let registry = wsan_obs::Registry::new();
    registry.counter("sim.tx").add(1234);
    registry.counter("sim.collisions").add(5);
    registry.gauge("sim.prr.last").set(0.9375);
    let h = registry.histogram("sim.prr", &[0.25, 0.5, 0.75, 0.9, 1.0]);
    for v in [0.1, 0.6, 0.93, 0.97, 1.0] {
        h.observe(v);
    }
    registry.timer("schedule").record(std::time::Duration::from_micros(830));

    let snapshot = registry.snapshot();
    let json = serde_json::to_string_pretty(&snapshot).expect("serializable");
    let back: wsan_obs::MetricsSnapshot = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, snapshot);

    assert_eq!(back.counters["sim.tx"], 1234);
    assert_eq!(back.gauges["sim.prr.last"], 0.9375);
    let hist = &back.histograms["sim.prr"];
    assert_eq!(hist.count, 5);
    // le-bound semantics: 0.1→(-∞,0.25], 0.6→(0.5,0.75], 0.93/0.97/1.0→(0.9,1.0]
    assert_eq!(hist.buckets, vec![1, 0, 1, 0, 3, 0]);
    assert_eq!(back.timers["schedule"].count, 1);
    assert_eq!(back.timers["schedule"].total_nanos, 830_000);
}

#[test]
fn global_registry_is_shared_across_call_sites() {
    let a = wsan_obs::global_metrics().counter("shared.count");
    let b = wsan_obs::global_metrics().counter("shared.count");
    a.inc();
    b.inc();
    assert_eq!(a.get(), b.get());
    assert!(a.get() >= 2);
}
