//! Concurrency guarantees of the flight recorder: records written from
//! many threads at once are lost-not-torn — every record in a dump is a
//! complete, self-consistent write, and sequence numbers stay strictly
//! increasing even across wraparound.

use std::sync::Arc;
use wsan_obs::flightrec::RecordKind;
use wsan_obs::trace::{RequestId, SpanId};
use wsan_obs::{FlightRecorder, Level};

/// Each writer stamps every record with correlated fields derived from a
/// single per-record token `x`: `span = x`, `parent = x + 1`,
/// `request = x + 2`, `dur_ns = 3 * x`. A torn read (payload mixed from
/// two writers) would break the correlation.
fn correlated_write(rec: &FlightRecorder, x: u64) {
    rec.record(
        RecordKind::SpanExit,
        Level::Debug,
        "torn-check",
        Some(SpanId(x)),
        Some(SpanId(x + 1)),
        Some(RequestId(x + 2)),
        3 * x,
    );
}

fn assert_correlated(dump: &[wsan_obs::FlightRecord]) {
    for r in dump {
        assert_eq!(r.parent, r.span + 1, "torn record: {r:?}");
        assert_eq!(r.request, r.span + 2, "torn record: {r:?}");
        assert_eq!(r.dur_ns, 3 * r.span, "torn record: {r:?}");
        assert_eq!(r.name, "torn-check");
    }
}

#[test]
fn concurrent_writers_never_tear_records() {
    // Small ring + many writers forces constant wraparound and slot
    // contention, the worst case for the seqlock protocol.
    let rec = Arc::new(FlightRecorder::new(32));
    let threads = 8;
    let per_thread: u64 = 5_000;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // tokens unique across all threads, far from overflow
                    correlated_write(&rec, 1 + t * 10_000_000 + i);
                }
            })
        })
        .collect();

    // dump concurrently with the writers: every observed record must
    // still be complete and self-consistent
    for _ in 0..200 {
        let dump = rec.dump();
        assert_correlated(&dump);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq), "dump must be seq-ordered");
    }
    for h in handles {
        h.join().expect("writer thread");
    }

    // quiescent dump: exactly one full ring of the newest records
    let total = threads * per_thread;
    assert_eq!(rec.recorded(), total);
    let dump = rec.dump();
    assert_eq!(dump.len(), rec.capacity());
    assert_correlated(&dump);
    assert!(dump.iter().all(|r| r.seq >= total - rec.capacity() as u64));
}

#[test]
fn concurrent_writes_during_dump_are_lost_not_torn() {
    let rec = Arc::new(FlightRecorder::new(16));
    for x in 1..=16u64 {
        correlated_write(&rec, x);
    }
    let writer = {
        let rec = Arc::clone(&rec);
        std::thread::spawn(move || {
            for x in 17..=50_000u64 {
                correlated_write(&rec, x);
            }
        })
    };
    let mut seen = 0usize;
    while seen < 1_000 {
        let dump = rec.dump();
        assert_correlated(&dump);
        seen += dump.len().max(1);
    }
    writer.join().expect("writer thread");
}
