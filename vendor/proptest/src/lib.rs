//! Offline stand-in for the subset of `proptest` this workspace uses:
//! range and tuple strategies, `collection::vec`, `prop_map`, the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros, `ProptestConfig::with_cases`, and `TestCaseError`.
//!
//! Cases are generated from a deterministic per-test seed (an FNV hash of
//! the test name), so failures are reproducible run-to-run. There is no
//! shrinking: a failing case reports its inputs via the assertion message
//! and the case index instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

/// How a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case did not meet a `prop_assume!` precondition; it is skipped
    /// without counting against the case budget.
    Reject,
    /// An assertion failed; the whole property test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failing outcome with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection (the message is dropped by this stand-in).
    pub fn reject(_message: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Numeric special-value strategies.

    pub mod f64 {
        //! `f64` strategies.

        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// The strategy type behind [`POSITIVE`].
        #[derive(Debug, Clone, Copy)]
        pub struct Positive;

        /// Strictly positive, finite `f64` values spanning several orders
        /// of magnitude.
        pub const POSITIVE: Positive = Positive;

        impl Strategy for Positive {
            type Value = f64;

            fn generate(&self, rng: &mut StdRng) -> f64 {
                let magnitude: f64 = rng.gen_range(-6.0f64..6.0);
                let mantissa: f64 = rng.gen_range(1.0f64..10.0);
                mantissa * 10f64.powf(magnitude)
            }
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test name.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case with a message when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?} == {:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Rejects the current case (without failing the test) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports the `#![proptest_config(..)]` header
/// and any number of `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            let strategy = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases * 20 + 100,
                    "{}: gave up after {} rejected cases",
                    stringify!($name),
                    attempts
                );
                let generated = $crate::Strategy::generate(&strategy, &mut rng);
                let ($($arg,)+) = generated;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "{} failed at case {} (attempt {}): {}",
                            stringify!($name),
                            accepted,
                            attempts,
                            message
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose((a, b) in (0u32..10, 5usize..9), v in crate::collection::vec(0i32..3, 1..5)) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0..3).contains(x)));
        }

        #[test]
        fn positive_is_positive(x in crate::num::f64::POSITIVE) {
            prop_assert!(x > 0.0 && x.is_finite());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn prop_map_applies(s in (1u32..5).prop_map(|n| n * 10)) {
            prop_assert!((10..50).contains(&s) && s % 10 == 0);
        }
    }
}
