//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`StdRng`](rngs::StdRng), [`SeedableRng`], and the [`Rng`] trait
//! with `gen`, `gen_range`, and `gen_bool`.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched. This crate keeps the workspace source unchanged by
//! providing the same paths and method names over a small, fully
//! deterministic PRNG (xoshiro256** seeded via SplitMix64). Streams are
//! stable across runs and platforms for a given seed, which is the property
//! every simulation and test in this repository actually relies on; they
//! are *not* bit-compatible with the real `rand` crate's `StdRng`.

#![forbid(unsafe_code)]

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let u: $t = Standard::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let u: $t = Standard::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing generator trait: uniform draws over types and ranges.
pub trait Rng {
    /// The raw 64-bit output feeding every other method.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_interval_draws_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_works_through_unsized_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(f64::EPSILON..1.0f64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = takes_dynish(&mut rng);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
