//! Derive macros for the offline `serde` stand-in.
//!
//! The real `serde_derive` (and its `syn`/`quote` dependencies) cannot be
//! fetched in this build environment, so these macros parse the input token
//! stream directly. Only the shapes this workspace actually derives are
//! supported: non-generic named-field structs, tuple/newtype/unit structs,
//! and enums whose variants are unit, tuple, or struct shaped. Generics and
//! `#[serde(...)]` attributes are rejected at compile time rather than
//! silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes of type this derive understands.
enum Data {
    /// `struct S { a: T, b: U }` — the listed field names.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — the field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (the offline stand-in's `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_input(input);
    let body = match &data {
        Data::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::value::Value::Map(vec![{}])", pairs.join(", "))
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::value::Value::Seq(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::value::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(&name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the offline stand-in's `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_input(input);
    let body = match &data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(f)).collect();
            format!(
                "if v.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::DeError::expected(\"object\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?")).collect();
            format!(
                "let items = v.as_seq()\
                     .ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(format!(\
                         \"expected {n} elements, found {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::UnitStruct => format!(
            "match v {{\n\
                 ::serde::value::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\"null\", other)),\n\
             }}"
        ),
        Data::Enum(variants) => deserialize_enum_body(&name, variants),
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("generated Deserialize impl parses")
}

/// One `match self` arm of a derived enum `to_value`.
fn serialize_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{name}::{vn} => \
             ::serde::value::Value::Str(::std::string::String::from(\"{vn}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{name}::{vn}(f0) => ::serde::value::Value::Map(vec![(\
                 ::std::string::String::from(\"{vn}\"), \
                 ::serde::Serialize::to_value(f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(f{i})")).collect();
            format!(
                "{name}::{vn}({}) => ::serde::value::Value::Map(vec![(\
                     ::std::string::String::from(\"{vn}\"), \
                     ::serde::value::Value::Seq(vec![{}]))]),",
                binders.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vn} {{ {} }} => ::serde::value::Value::Map(vec![(\
                     ::std::string::String::from(\"{vn}\"), \
                     ::serde::value::Value::Map(vec![{}]))]),",
                fields.join(", "),
                pairs.join(", ")
            )
        }
    }
}

/// A named-struct (or struct-variant) field initialiser reading `src`,
/// treating a missing key as `Null` so `Option` fields default to `None`.
fn field_init_from(src: &str, f: &str) -> String {
    format!(
        "{f}: ::serde::Deserialize::from_value(\
             {src}.get(\"{f}\").unwrap_or(&::serde::value::Value::Null))\
             .map_err(|e| e.context(\"{f}\"))?"
    )
}

fn named_field_init(f: &str) -> String {
    field_init_from("v", f)
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> =
        variants.iter().filter(|v| matches!(v.kind, VariantKind::Unit)).collect();
    let tagged: Vec<&Variant> =
        variants.iter().filter(|v| !matches!(v.kind, VariantKind::Unit)).collect();

    let str_arm = if unit.is_empty() {
        "::serde::value::Value::Str(s) => ::std::result::Result::Err(\
             ::serde::DeError::custom(format!(\"unknown variant {:?}\", s))),"
            .to_string()
    } else {
        let arms: Vec<String> = unit
            .iter()
            .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
            .collect();
        format!(
            "::serde::value::Value::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(\
                     ::serde::DeError::custom(format!(\"unknown variant {{:?}}\", other))),\n\
             }},",
            arms.join("\n")
        )
    };

    let map_arm = if tagged.is_empty() {
        "::serde::value::Value::Map(fields) => ::std::result::Result::Err(\
             ::serde::DeError::custom(format!(\"unknown variant object with {} keys\", \
             fields.len()))),"
            .to_string()
    } else {
        let arms: Vec<String> = tagged.iter().map(|v| tagged_variant_arm(name, v)).collect();
        format!(
            "::serde::value::Value::Map(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                     {}\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::custom(format!(\"unknown variant {{:?}}\", other))),\n\
                 }}\n\
             }},",
            arms.join("\n")
        )
    };

    format!(
        "match v {{\n\
             {str_arm}\n\
             {map_arm}\n\
             other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"externally tagged enum\", other)),\n\
         }}"
    )
}

/// One `match tag.as_str()` arm for a newtype / tuple / struct variant.
fn tagged_variant_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants are handled in the Str arm"),
        VariantKind::Tuple(1) => format!(
            "\"{vn}\" => ::std::result::Result::Ok(\
                 {name}::{vn}(::serde::Deserialize::from_value(inner)\
                     .map_err(|e| e.context(\"{vn}\"))?)),"
        ),
        VariantKind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "\"{vn}\" => {{\n\
                     let items = inner.as_seq()\
                         .ok_or_else(|| ::serde::DeError::expected(\"array\", inner))?;\n\
                     if items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(format!(\
                             \"variant {vn}: expected {n} elements, found {{}}\", items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                 }},",
                items.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init_from("inner", f)).collect();
            format!(
                "\"{vn}\" => {{\n\
                     if inner.as_map().is_none() {{\n\
                         return ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"object\", inner));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                 }},",
                inits.join(", ")
            )
        }
    }
}

// ---- token-stream parsing ------------------------------------------------

/// Parses a derive input down to (type name, shape). Panics (a compile
/// error at the derive site) on shapes this stand-in does not support.
fn parse_input(input: TokenStream) -> (String, Data) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("the offline serde derive does not support generic types ({name})");
        }
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Data::NamedStruct(field_names(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Data::TupleStruct(split_top_level_commas(g.stream()).len()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Data::UnitStruct),
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants =
                    split_top_level_commas(g.stream()).iter().map(|p| parse_variant(p)).collect();
                (name, Data::Enum(variants))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

/// Advances past `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracketed attribute group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a field / variant list on commas at angle-bracket depth zero.
/// (Parenthesised and bracketed sub-streams are opaque `Group` tokens, so
/// only `<`/`>` need tracking; `->` is recognised so it does not close a
/// generic list.)
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth: i32 = 0;
    let mut prev_dash = false;
    for t in stream {
        let mut this_dash = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1,
                '-' => this_dash = true,
                ',' if depth == 0 => {
                    parts.push(Vec::new());
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
        }
        prev_dash = this_dash;
        parts.last_mut().expect("parts is never empty").push(t);
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop();
    }
    parts
}

/// Extracts the field names from a named-field body.
fn field_names(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .iter()
        .map(|part| {
            let i = skip_attrs_and_vis(part, 0);
            match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

/// Parses one enum variant: `Name`, `Name(T, ...)`, or `Name { f: T, ... }`.
fn parse_variant(part: &[TokenTree]) -> Variant {
    let i = skip_attrs_and_vis(part, 0);
    let name = match part.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected variant name, found {other:?}"),
    };
    let kind = match part.get(i + 1) {
        None => VariantKind::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(split_top_level_commas(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantKind::Named(field_names(g.stream()))
        }
        other => panic!("unsupported variant shape after {name}: {other:?}"),
    };
    Variant { name, kind }
}
