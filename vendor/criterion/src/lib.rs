//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The real `criterion` cannot be fetched in this build environment. This
//! crate keeps the bench sources unchanged: the same macros and types run
//! each benchmark a configured number of iterations and print mean timings
//! to stdout. There is no statistical analysis, warm-up, or HTML report —
//! the numbers are indicative, not publication grade.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::Instant;

/// Opaque wrapper preventing the optimiser from deleting a benched value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        bencher.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.criterion.sample_size;
        let mut bencher = Bencher { samples: Vec::with_capacity(sample_size) };
        for _ in 0..sample_size {
            f(&mut bencher, input);
        }
        bencher.report(&full);
        self
    }

    /// Finishes the group (a no-op in this stand-in).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a displayable input.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Collects timed samples of a closure.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one sample of `f` (called once per configured sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed().as_secs_f64();
        drop(black_box(out));
        self.samples.push(elapsed);
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id}: no samples");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "bench {id}: mean {:.3} ms  min {:.3} ms  max {:.3} ms  ({} samples)",
            mean * 1e3,
            min * 1e3,
            max * 1e3,
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions with a shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waste_time(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u32, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn driver_runs_benches() {
        let mut criterion = Criterion::default().sample_size(2);
        waste_time(&mut criterion);
    }

    criterion_group! {
        name = example;
        config = Criterion::default().sample_size(1);
        targets = waste_time
    }

    #[test]
    fn grouped_entry_point_runs() {
        example();
    }
}
