//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `serde` cannot
//! be fetched. This crate keeps the workspace source unchanged: it exports
//! `Serialize` / `Deserialize` traits and (behind the `derive` feature)
//! derive macros with the same names, implemented over a small JSON-shaped
//! [`value::Value`] data model instead of serde's visitor architecture.
//! `serde_json` in this vendor tree renders and parses that model.
//!
//! Supported shapes match what the workspace derives: named-field structs,
//! tuple/newtype/unit structs, and enums with unit, tuple, and struct
//! variants (externally tagged, like real serde). Maps with string or
//! integer keys round-trip; other key types serialize through their JSON
//! encoding but do not round-trip.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The JSON-shaped data model shared by `Serialize` and `Deserialize`.

    /// A JSON-shaped value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A signed integer.
        Int(i64),
        /// An unsigned integer too large for `i64`.
        UInt(u64),
        /// A floating-point number.
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Seq(Vec<Value>),
        /// An object; insertion order is preserved.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// The fields of an object, if this is one.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(m) => Some(m),
                _ => None,
            }
        }

        /// The elements of an array, if this is one.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(s) => Some(s),
                _ => None,
            }
        }

        /// Looks up an object field by name.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        /// A one-word description used in error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "number",
                Value::Str(_) => "string",
                Value::Seq(_) => "array",
                Value::Map(_) => "object",
            }
        }
    }
}

use value::Value;

/// A deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// Prefixes the error with a field or variant context.
    #[must_use]
    pub fn context(self, ctx: &str) -> Self {
        DeError { message: format!("{ctx}: {}", self.message) }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type from `v`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitives ----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if let Ok(narrow) = i64::try_from(wide) {
                    Value::Int(narrow)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

// ---- containers ----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let found = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, found {found}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_seq().ok_or_else(|| DeError::expected("tuple array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---- maps and sets -------------------------------------------------------

/// Turns a serialized key into the JSON object-key string: strings pass
/// through, scalars use their JSON text, and structured keys fall back to a
/// compact JSON encoding (which does not round-trip, matching how the real
/// serde_json rejects them).
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => f.to_string(),
        other => compact(other),
    }
}

fn compact(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Seq(items) => {
            let inner: Vec<String> = items.iter().map(compact).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Map(fields) => {
            let inner: Vec<String> =
                fields.iter().map(|(k, v)| format!("{k:?}:{}", compact(v))).collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Reconstructs a key [`Value`] from the object-key string for `K`'s
/// deserializer: tried first as a string, then as an integer.
fn key_value<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    Err(DeError::custom(format!("cannot reconstruct map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (key_string(&k.to_value()), v.to_value())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_map().ok_or_else(|| DeError::expected("object", v))?;
        fields.iter().map(|(k, v)| Ok((key_value::<K>(k)?, V::from_value(v)?))).collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // deterministic output: sort by rendered key
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_string(&k.to_value()), v.to_value())).collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_map().ok_or_else(|| DeError::expected("object", v))?;
        fields.iter().map(|(k, v)| Ok((key_value::<K>(k)?, V::from_value(v)?))).collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut rendered: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        rendered.sort_by_key(compact);
        Value::Seq(rendered)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
    }

    #[test]
    fn big_u64_round_trips() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()), Ok(big));
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<Vec<u8>> = Some(vec![1, 2, 3]);
        assert_eq!(Option::<Vec<u8>>::from_value(&v.to_value()), Ok(v));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn int_keyed_map_round_trips() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "a".to_string());
        m.insert(7u32, "b".to_string());
        assert_eq!(BTreeMap::<u32, String>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn wrong_shape_is_an_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
    }
}
