//! Offline JSON front-end for the `serde` stand-in: renders and parses the
//! stand-in's [`serde::value::Value`] data model with the same public entry
//! points this workspace uses from the real `serde_json` (`to_string`,
//! `to_string_pretty`, `from_str`, `Error`).

#![forbid(unsafe_code)]

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails for the value model this stand-in supports; the `Result`
/// mirrors the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the value model this stand-in supports; the `Result`
/// mirrors the real crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---- writer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = f.to_string();
        out.push_str(&text);
        // keep floats recognisable as floats, matching serde_json
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // the real serde_json errors here; emitting null keeps reports
        // writable when a metric degenerates
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.fail("trailing characters"));
        }
        Ok(v)
    }

    fn fail(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.fail(&format!("unexpected character {:?}", b as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.fail("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self.bytes.get(self.pos).ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.fail("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.fail("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        let v: Vec<i32> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(v, vec![1, -2, 3]);
    }

    #[test]
    fn parses_nested_documents() {
        let v: Vec<Vec<f64>> = from_str("[[1.5, 2e3], []]").unwrap();
        assert_eq!(v, vec![vec![1.5, 2000.0], vec![]]);
        let pairs: Vec<(u32, String)> = from_str(r#"[[1, "a"], [2, "b\n"]]"#).unwrap();
        assert_eq!(pairs, vec![(1, "a".to_string()), (2, "b\n".to_string())]);
    }

    #[test]
    fn pretty_output_parses_back() {
        let original = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&original).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn object_round_trips_through_map() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1u32);
        m.insert("y".to_string(), 2u32);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"x":1,"y":2}"#);
        let back: BTreeMap<String, u32> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Vec<i32>>("[1, 2").is_err());
        assert!(from_str::<bool>("truthy").is_err());
        assert!(from_str::<u32>("12 34").is_err());
    }
}
