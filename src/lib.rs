//! Umbrella crate for the conservative channel reuse (ICDCS'18) WSAN stack.
//!
//! Re-exports every layer of the reproduction so downstream users (and the
//! examples and integration tests in this repository) need a single
//! dependency:
//!
//! * [`net`] — topologies, PRR tables, communication/reuse graphs, routing,
//! * [`flow`] — periodic real-time flows and flow-set generation,
//! * [`core`] — the RC scheduler and its NR/RA baselines,
//! * [`sim`] — the TSCH network simulator with a capture-effect PHY,
//! * [`detect`] — the reuse-degradation classifier (K-S test),
//! * [`stats`] — ECDF / K-S / summary statistics,
//! * [`obs`] — tracing and metrics instrumentation (off by default),
//! * [`expr`] — the experiment harness reproducing the paper's figures.

#![forbid(unsafe_code)]

pub use wsan_core as core;
pub use wsan_detect as detect;
pub use wsan_expr as expr;
pub use wsan_flow as flow;
pub use wsan_net as net;
pub use wsan_obs as obs;
pub use wsan_sim as sim;
pub use wsan_stats as stats;
