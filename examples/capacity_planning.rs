//! Capacity planning: the analytical admission test vs. the real
//! schedulers.
//!
//! A network operator wants to know *before deployment* how many control
//! loops a network can carry. The delay-bound analysis
//! (`wsan_core::analysis`, in the spirit of the WirelessHART delay analysis
//! the paper cites) answers instantly but pessimistically; the schedulers
//! answer exactly but per-workload. This example sweeps the load and shows
//! all four capacity estimates side by side:
//!
//! * analysis (sufficient test, no reuse),
//! * NR (exact, no reuse),
//! * RC (conservative reuse),
//! * RA (aggressive reuse).
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use wsan::core::{analysis, NetworkModel};
use wsan::expr::Algorithm;
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr};

fn main() {
    let topology = testbeds::wustl(9);
    let channels = ChannelId::range(11, 14).expect("valid");
    let comm = topology.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let model = NetworkModel::new(&topology, &channels);
    let workloads = 10u64;

    println!("WUSTL topology, 4 channels, peer-to-peer loops at 1-4 s periods");
    println!("(fraction of {workloads} random workloads admitted per method)\n");
    println!("{:>7}  {:>9}  {:>6}  {:>6}  {:>6}", "#flows", "analysis", "NR", "RC", "RA");
    for flows in [20usize, 40, 60, 80, 100, 120, 140] {
        let cfg = FlowSetConfig::new(
            flows,
            PeriodRange::new(0, 2).expect("valid"),
            TrafficPattern::PeerToPeer,
        );
        let mut admitted = [0u32; 4];
        for seed in 0..workloads {
            let Ok(set) = FlowSetGenerator::new(1000 + seed).generate(&comm, &cfg) else {
                continue;
            };
            if analysis::analyse(&set, &model, 2).schedulable() {
                admitted[0] += 1;
            }
            for (i, algo) in [Algorithm::Nr, Algorithm::Rc { rho_t: 2 }, Algorithm::Ra { rho: 2 }]
                .iter()
                .enumerate()
            {
                if algo.build().schedule(&set, &model).is_ok() {
                    admitted[i + 1] += 1;
                }
            }
        }
        let pct = |n: u32| format!("{}%", n * 100 / workloads as u32);
        println!(
            "{flows:>7}  {:>9}  {:>6}  {:>6}  {:>6}",
            pct(admitted[0]),
            pct(admitted[1]),
            pct(admitted[2]),
            pct(admitted[3])
        );
    }
    println!("\nthe analysis is safe (never admits what NR cannot schedule) but");
    println!("pessimistic; reuse extends real capacity well beyond both.");
}
