//! Closing the loop: detect reuse-degraded links, repair the schedule,
//! verify the recovery.
//!
//! The paper's detection policy (§VI) exists so the network manager can
//! *act*: "links can be reassigned to different channels or time slots".
//! This example runs the full loop on the simulated WUSTL testbed:
//!
//! 1. schedule a dense workload with aggressive reuse (RA),
//! 2. execute it and classify every reuse-involved link (K-S policy),
//! 3. reassign the rejected links' jobs to contention-free cells,
//! 4. re-execute and compare the repaired links' PRR.
//!
//! ```sh
//! cargo run --release --example detect_and_repair
//! ```

use wsan::core::{repair, NetworkModel};
use wsan::detect::{DetectionPolicy, EpochReport};
use wsan::expr::Algorithm;
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr};
use wsan::sim::{LinkCondition, SimConfig, SimReport, Simulator};

fn classify(report: &SimReport, policy: &DetectionPolicy) -> EpochReport {
    let samples = report.links_with_reuse().into_iter().map(|link| {
        (
            link,
            report.prr_distribution(link, LinkCondition::Reuse),
            report.prr_distribution(link, LinkCondition::ContentionFree),
        )
    });
    EpochReport::evaluate(0, policy, samples)
}

fn main() {
    let topology = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).expect("valid");
    let comm = topology.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let model = NetworkModel::new(&topology, &channels);

    // a dense 1 s workload that forces plenty of reuse under RA
    let config =
        FlowSetConfig::new(110, PeriodRange::new(0, 0).expect("valid"), TrafficPattern::PeerToPeer);
    let flows = FlowSetGenerator::new(0xFEED).generate(&comm, &config).expect("generation");
    let schedule = Algorithm::Ra { rho: 2 }.build().schedule(&flows, &model).expect("RA schedules");

    // 1-2: execute and classify
    let sim_cfg = SimConfig { repetitions: 180, window_reps: 10, ..SimConfig::default() };
    let sim = Simulator::new(&topology, &channels, &flows, &schedule);
    let before = sim.run(&sim_cfg);
    let policy = DetectionPolicy::default();
    let epoch = classify(&before, &policy);
    let rejected = epoch.rejected();
    println!(
        "before repair: {} reuse-involved links, {} below PRR_t, {} attributed to reuse",
        before.links_with_reuse().len(),
        epoch.below_threshold(policy.prr_threshold).len(),
        rejected.len()
    );
    if rejected.is_empty() {
        println!("nothing to repair — try a denser workload");
        return;
    }

    // 3: repair
    let (repaired, report) = repair::reassign_degraded(&schedule, &model, &flows, 2, &rejected)
        .expect("schedule and flow set are consistent");
    println!(
        "repair: {} jobs re-placed, {} transmissions moved, {} jobs unrepairable",
        report.repaired_jobs.len(),
        report.moved_transmissions,
        report.failed_jobs.len()
    );

    // 4: re-execute and compare the rejected links
    let sim2 = Simulator::new(&topology, &channels, &flows, &repaired);
    let after = sim2.run(&sim_cfg);
    println!("\n{:>10}  {:>12}  {:>12}", "link", "PRR before", "PRR after");
    let mut recovered = 0usize;
    for link in &rejected {
        let b = before.overall_prr(*link, LinkCondition::Reuse).unwrap_or(f64::NAN);
        // after the repair the link should be contention-free
        let a = after
            .overall_prr(*link, LinkCondition::ContentionFree)
            .or_else(|| after.overall_prr(*link, LinkCondition::Reuse))
            .unwrap_or(f64::NAN);
        if a > b {
            recovered += 1;
        }
        println!("{:>10}  {:>12.3}  {:>12.3}", link.to_string(), b, a);
    }
    println!(
        "\n{recovered}/{} rejected links improved; network PDR {:.4} → {:.4}",
        rejected.len(),
        before.network_pdr(),
        after.network_pdr()
    );
}
