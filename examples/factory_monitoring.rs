//! Factory monitoring: centralized control traffic through the gateway.
//!
//! Models the classic process-monitoring deployment: sensors report to a
//! controller behind the gateway and control output returns to actuators,
//! so every flow is routed through an access point. The example grows the
//! sensor population and shows where the standard WirelessHART scheduler
//! (NR) runs out of capacity while conservative reuse (RC) keeps going —
//! the Fig. 1(c) story on a single topology.
//!
//! ```sh
//! cargo run --release --example factory_monitoring
//! ```

use wsan::core::NetworkModel;
use wsan::expr::Algorithm;
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr};

fn main() {
    let topology = testbeds::indriya(2026);
    let channels = ChannelId::range(11, 14).expect("valid channel range");
    let comm = topology.comm_graph(&channels, Prr::new(0.9).expect("valid threshold"));
    let model = NetworkModel::new(&topology, &channels);
    let aps = comm.select_access_points(2);
    println!(
        "factory network: {} nodes, access points {} and {}",
        topology.node_count(),
        aps[0],
        aps[1]
    );
    println!("control loops run at 1-4 s periods through the gateway\n");

    println!("{:>8}  {:>12}  {:>12}  {:>12}", "sensors", "NR", "RA", "RC");
    for flow_count in [10, 20, 30, 40, 50, 60] {
        let config = FlowSetConfig::new(
            flow_count,
            PeriodRange::new(0, 2).expect("valid period range"),
            TrafficPattern::Centralized,
        );
        // ten workloads per size; report how many each scheduler handles
        let mut ok = [0u32; 3];
        let algos = Algorithm::paper_suite();
        for seed in 0..10u64 {
            let mut generator = FlowSetGenerator::new(1000 + seed);
            let Ok(flows) = generator.generate(&comm, &config) else {
                continue;
            };
            for (i, algo) in algos.iter().enumerate() {
                if algo.build().schedule(&flows, &model).is_ok() {
                    ok[i] += 1;
                }
            }
        }
        println!(
            "{flow_count:>8}  {:>11}  {:>11}  {:>11}",
            format!("{}%", ok[0] * 10),
            format!("{}%", ok[1] * 10),
            format!("{}%", ok[2] * 10)
        );
    }
    println!("\n(each cell: fraction of 10 random workloads schedulable)");
    println!("centralized routes pile up around the access points, so reuse helps less");
    println!("than peer-to-peer — but RC still extends the schedulable load beyond NR.");
}
