//! Diagnosing link degradation: channel reuse or external interference?
//!
//! Reproduces the §VI workflow end to end: schedule a workload with
//! aggressive reuse, run it under WiFi interference, collect each reused
//! link's PRR distributions in reuse vs. contention-free slots, and let the
//! Kolmogorov–Smirnov classifier attribute every unreliable link to its
//! cause. Links the classifier *rejects* need rescheduling; links it
//! *accepts* would not improve if reuse were removed.
//!
//! ```sh
//! cargo run --release --example interference_detection
//! ```

use wsan::detect::LinkVerdict;
use wsan::expr::detection::{evaluate, DetectionConfig};
use wsan::expr::Algorithm;
use wsan::net::{testbeds, ChannelId};

fn main() {
    let topology = testbeds::wustl(2025);
    let channels = ChannelId::range(11, 14).expect("valid channel range");
    let cfg = DetectionConfig {
        flow_count: 30,
        epochs: 3,
        samples_per_epoch: 18,
        window_reps: 10,
        ..DetectionConfig::default()
    };
    println!("30 peer-to-peer flows at 1 s on channels 11-14; WiFi interferers on every floor\n");
    let runs = evaluate(
        &topology,
        &channels,
        &[Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }],
        &cfg,
    );
    for run in &runs {
        println!("=== scheduler {} ===", run.algorithm);
        println!("links involved in channel reuse: {}", run.links_with_reuse);
        for (label, epochs) in [("clean", &run.clean), ("under WiFi", &run.interfered)] {
            println!("  {label} environment:");
            for epoch in epochs {
                let rejected = epoch.rejected();
                let accepted = epoch.accepted();
                println!(
                    "    epoch {}: {} below PRR_t → {} reuse-degraded (reject), {} external (accept)",
                    epoch.epoch,
                    epoch.below_threshold(cfg.policy.prr_threshold).len(),
                    rejected.len(),
                    accepted.len()
                );
                for record in &epoch.records {
                    if record.verdict != LinkVerdict::Healthy {
                        println!(
                            "      {} PRR_r={:.2} → {:?}",
                            record.link,
                            record.prr_r.unwrap_or(0.0),
                            record.verdict
                        );
                    }
                }
            }
        }
        println!();
    }
    println!("rejected links would be moved to different channels/slots by the manager;");
    println!("accepted links are victims of the WiFi interference itself.");
}
