//! Peer-to-peer control loops with reliability simulation.
//!
//! Controllers run on field devices (no gateway round-trip). The example
//! schedules the same workload with NR, RA, and RC, executes each schedule
//! 100 times on the simulated PHY, and compares delivery reliability — the
//! Fig. 8 trade-off in miniature: RA reuses the most and pays in worst-case
//! PDR; RC reuses only where deadlines demand and stays close to NR.
//!
//! ```sh
//! cargo run --release --example peer_to_peer_control
//! ```

use wsan::core::{metrics, NetworkModel};
use wsan::expr::Algorithm;
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr};
use wsan::sim::{SimConfig, Simulator};
use wsan::stats::BoxPlot;

fn main() {
    let topology = testbeds::wustl(77);
    let channels = ChannelId::range(11, 14).expect("valid channel range");
    let comm = topology.comm_graph(&channels, Prr::new(0.9).expect("valid threshold"));
    let model = NetworkModel::new(&topology, &channels);

    // 40 control loops, half at 0.5 s and half at 1 s (uniform over the
    // harmonic range), peer-to-peer routing.
    let config = FlowSetConfig::new(
        40,
        PeriodRange::new(-1, 0).expect("valid period range"),
        TrafficPattern::PeerToPeer,
    );
    // find a workload all three schedulers accept
    let (flows, _) = (0..50u64)
        .find_map(|seed| {
            let flows = FlowSetGenerator::new(seed).generate(&comm, &config).ok()?;
            Algorithm::paper_suite()
                .iter()
                .all(|a| a.build().schedule(&flows, &model).is_ok())
                .then_some((flows, seed))
        })
        .expect("some workload is schedulable by all three algorithms");
    println!(
        "workload: {} peer-to-peer loops, hyperperiod {} slots\n",
        flows.len(),
        flows.hyperperiod()
    );

    println!(
        "{:>5}  {:>10}  {:>10}  {:>10}  {:>14}",
        "algo", "median PDR", "worst PDR", "q1 PDR", "reused cells"
    );
    for algo in Algorithm::paper_suite() {
        let schedule = algo.build().schedule(&flows, &model).expect("checked above");
        let m = metrics::compute(&schedule, &model);
        let reused = 1.0 - m.no_reuse_fraction();
        let sim = Simulator::new(&topology, &channels, &flows, &schedule);
        let report = sim.run(&SimConfig { repetitions: 100, ..SimConfig::default() });
        let pdrs = report.flow_pdrs();
        let boxplot = BoxPlot::of(&pdrs).expect("flows exist");
        println!(
            "{:>5}  {:>10.3}  {:>10.3}  {:>10.3}  {:>13.1}%",
            algo.to_string(),
            boxplot.median,
            report.worst_flow_pdr(),
            boxplot.q1,
            100.0 * reused
        );
    }
    println!("\nRC should sit near NR in reliability while reusing only when needed;");
    println!("RA reuses everywhere and shows the deepest worst-case dips.");
}
