//! Quickstart: build a network, generate a real-time workload, and schedule
//! it with conservative channel reuse.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wsan::core::{metrics, NetworkModel, NoReuse, ReuseConservatively, Scheduler};
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr};

fn main() {
    // 1. A 60-node, 3-floor topology in the spirit of the WUSTL testbed,
    //    with per-channel PRR tables for all 16 IEEE 802.15.4 channels.
    let topology = testbeds::wustl(42);
    println!("topology: {} with {} nodes", topology.name(), topology.node_count());

    // 2. The network manager derives its two graphs from the PRR tables.
    let channels = ChannelId::range(11, 14).expect("valid channel range");
    let prr_t = Prr::new(0.9).expect("valid threshold");
    let comm = topology.comm_graph(&channels, prr_t);
    let reuse = topology.reuse_graph(&channels);
    println!(
        "communication graph: {} edges (diameter {}), reuse graph: {} edges (diameter {})",
        comm.edge_count(),
        comm.diameter(),
        reuse.edge_count(),
        reuse.diameter()
    );

    // 3. A periodic real-time workload: 30 peer-to-peer control loops with
    //    harmonic periods between 1 s and 4 s, deadline-monotonic priorities.
    let config = FlowSetConfig::new(
        30,
        PeriodRange::new(0, 2).expect("valid period range"),
        TrafficPattern::PeerToPeer,
    );
    let flows = FlowSetGenerator::new(7).generate(&comm, &config).expect("workload generation");
    println!(
        "workload: {} flows, hyperperiod {} slots, {} transmissions/hyperperiod (before retries)",
        flows.len(),
        flows.hyperperiod(),
        flows.transmission_demand()
    );

    // 4. Schedule with RC (the paper's Algorithm 1) and with the standard
    //    WirelessHART baseline.
    let model = NetworkModel::new(&topology, &channels);
    let rc_schedule = ReuseConservatively::new(2).schedule(&flows, &model).expect("RC schedules");
    match NoReuse::new().schedule(&flows, &model) {
        Ok(_) => println!("NR also schedules this workload (reuse was optional)"),
        Err(e) => println!("NR fails ({e}); RC needed channel reuse to fit the deadlines"),
    }

    // 5. Inspect how much reuse RC actually introduced.
    let m = metrics::compute(&rc_schedule, &model);
    println!(
        "RC schedule: {} transmissions, {:.1}% of occupied cells without reuse",
        rc_schedule.entry_count(),
        100.0 * m.no_reuse_fraction()
    );
    for (hops, count) in m.reuse_hop_count.iter() {
        println!("  shared cells at {hops} reuse hops: {count}");
    }
}
