#!/usr/bin/env sh
# Repository CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root:  ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier 1)"
cargo test -q --workspace

echo "==> hot-path equivalence suite runs in the default pass"
cargo test -q --test proptest_invariants -- --list | grep -q "equivalence_hot_path_primitives_match_reference"
cargo test -q --test proptest_invariants -- --list | grep -q "equivalence_schedulers_byte_identical_to_reference"

echo "==> release smoke run (fig6, tiny scale)"
smoke_dir="$(mktemp -d)"
WSAN_RESULTS_DIR="$smoke_dir" cargo run --release -q -p wsan-bench --bin fig6 -- --sets 2 --quick
test -s "$smoke_dir/fig6.json"
test -s "$smoke_dir/fig6.manifest.jsonl"
rm -rf "$smoke_dir"

echo "==> scheduler bench smoke (criterion + sched_bench schema)"
bench_dir="$(mktemp -d)"
WSAN_BENCH_SAMPLES=2 cargo bench -q -p wsan-bench --bench scheduler > "$bench_dir/criterion.out"
grep -q "sched/indriya-dense" "$bench_dir/criterion.out"
WSAN_RESULTS_DIR="$bench_dir" cargo run --release -q -p wsan-bench --bin sched_bench -- --quick
test -s "$bench_dir/BENCH_scheduler.json"
grep -q '"schema": "wsan.sched_bench/1"' "$bench_dir/BENCH_scheduler.json"
grep -q '"median_ns_per_placement"' "$bench_dir/BENCH_scheduler.json"
grep -q '"schedules_per_sec"' "$bench_dir/BENCH_scheduler.json"
grep -q '"speedup_rc_vs_reference"' "$bench_dir/BENCH_scheduler.json"
rm -rf "$bench_dir"

echo "==> campaign interrupt/resume smoke (wsan campaign)"
camp_dir="$(mktemp -d)"
out="$camp_dir/smoke.json"
manifest="$camp_dir/smoke.manifest.jsonl"
# reference aggregate from an uninterrupted run
cargo run --release -q -p wsan-cli --bin wsan -- campaign --name smoke --sets 2 \
    --out "$out" --manifest "$manifest"
cp "$out" "$camp_dir/reference.json"
# simulate a kill during the last checkpoint write: keep the header, the
# first complete point, and a torn third line
head -n 2 "$manifest" > "$manifest.cut"
tail -n +3 "$manifest" | head -n 1 | cut -c 1-10 | tr -d '\n' >> "$manifest.cut"
mv "$manifest.cut" "$manifest"
rm "$out"
cargo run --release -q -p wsan-cli --bin wsan -- campaign --name smoke --sets 2 \
    --out "$out" --manifest "$manifest" --resume
cmp "$out" "$camp_dir/reference.json"
rm -rf "$camp_dir"

echo "CI green."
