#!/usr/bin/env sh
# Repository CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root:  ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier 1)"
cargo test -q --workspace

echo "==> release smoke run (fig6, tiny scale)"
smoke_dir="$(mktemp -d)"
WSAN_RESULTS_DIR="$smoke_dir" cargo run --release -q -p wsan-bench --bin fig6 -- --sets 2 --quick
test -s "$smoke_dir/fig6.json"
rm -rf "$smoke_dir"

echo "CI green."
