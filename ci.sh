#!/usr/bin/env sh
# Repository CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root:  ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier 1)"
cargo test -q --workspace

echo "CI green."
