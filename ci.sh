#!/usr/bin/env sh
# Repository CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root:  ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier 1)"
cargo test -q --workspace

echo "==> release smoke run (fig6, tiny scale)"
smoke_dir="$(mktemp -d)"
WSAN_RESULTS_DIR="$smoke_dir" cargo run --release -q -p wsan-bench --bin fig6 -- --sets 2 --quick
test -s "$smoke_dir/fig6.json"
test -s "$smoke_dir/fig6.manifest.jsonl"
rm -rf "$smoke_dir"

echo "==> campaign interrupt/resume smoke (wsan campaign)"
camp_dir="$(mktemp -d)"
out="$camp_dir/smoke.json"
manifest="$camp_dir/smoke.manifest.jsonl"
# reference aggregate from an uninterrupted run
cargo run --release -q -p wsan-cli --bin wsan -- campaign --name smoke --sets 2 \
    --out "$out" --manifest "$manifest"
cp "$out" "$camp_dir/reference.json"
# simulate a kill during the last checkpoint write: keep the header, the
# first complete point, and a torn third line
head -n 2 "$manifest" > "$manifest.cut"
tail -n +3 "$manifest" | head -n 1 | cut -c 1-10 | tr -d '\n' >> "$manifest.cut"
mv "$manifest.cut" "$manifest"
rm "$out"
cargo run --release -q -p wsan-cli --bin wsan -- campaign --name smoke --sets 2 \
    --out "$out" --manifest "$manifest" --resume
cmp "$out" "$camp_dir/reference.json"
rm -rf "$camp_dir"

echo "CI green."
