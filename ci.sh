#!/usr/bin/env sh
# Repository CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root:  ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier 1)"
cargo test -q --workspace

echo "==> hot-path equivalence suite runs in the default pass"
eq_prop="$(cargo test -q --test proptest_invariants -- --list)"
echo "$eq_prop" | grep -q "equivalence_hot_path_primitives_match_reference"
echo "$eq_prop" | grep -q "equivalence_schedulers_byte_identical_to_reference"
echo "$eq_prop" | grep -q "equivalence_capped_hops_conservative_for_every_rho"
echo "$eq_prop" | grep -q "equivalence_exact_hops_matches_dense"
echo "$eq_prop" | grep -q "equivalence_parallel_capped_build_is_byte_identical"
echo "$eq_prop" | grep -q "equivalence_restricted_extraction_matches_dense"

echo "==> event-vs-oracle sim equivalence suite runs in the default pass"
eq_list="$(cargo test -q -p wsan-sim --test engine_equivalence -- --list)"
echo "$eq_list" | grep -q "dense_contract_run_is_byte_identical"
echo "$eq_list" | grep -q "scheduled_faults_match_including_fault_log"
echo "$eq_list" | grep -q "outside_contract_is_statistically_equivalent"
echo "$eq_list" | grep -q "random_contract_scenarios_are_byte_identical"

echo "==> release smoke run (fig6, tiny scale)"
smoke_dir="$(mktemp -d)"
WSAN_RESULTS_DIR="$smoke_dir" cargo run --release -q -p wsan-bench --bin fig6 -- --sets 2 --quick
test -s "$smoke_dir/fig6.json"
test -s "$smoke_dir/fig6.manifest.jsonl"
rm -rf "$smoke_dir"

fresh_bench_dir="$(mktemp -d)"

echo "==> scheduler bench smoke (criterion + sched_bench schema)"
bench_dir="$(mktemp -d)"
WSAN_BENCH_SAMPLES=2 cargo bench -q -p wsan-bench --bench scheduler > "$bench_dir/criterion.out"
grep -q "sched/indriya-dense" "$bench_dir/criterion.out"
WSAN_RESULTS_DIR="$bench_dir" cargo run --release -q -p wsan-bench --bin sched_bench -- --quick
test -s "$bench_dir/BENCH_scheduler.json"
grep -q '"schema": "wsan.sched_bench/1"' "$bench_dir/BENCH_scheduler.json"
grep -q '"median_ns_per_placement"' "$bench_dir/BENCH_scheduler.json"
grep -q '"schedules_per_sec"' "$bench_dir/BENCH_scheduler.json"
grep -q '"speedup_rc_vs_reference"' "$bench_dir/BENCH_scheduler.json"
cp "$bench_dir/BENCH_scheduler.json" "$fresh_bench_dir/"
rm -rf "$bench_dir"

echo "==> simulator bench smoke (sim_bench schema + committed snapshot)"
simb_dir="$(mktemp -d)"
WSAN_RESULTS_DIR="$simb_dir" ./target/release/sim_bench --quick
test -s "$simb_dir/BENCH_sim.json"
grep -q '"schema": "wsan.sim_bench/1"' "$simb_dir/BENCH_sim.json"
grep -q '"speedup_events_vs_slots"' "$simb_dir/BENCH_sim.json"
grep -q '"occupancy"' "$simb_dir/BENCH_sim.json"
grep -q '"reports_identical": true' "$simb_dir/BENCH_sim.json"
# the committed snapshot must track the same schema
grep -q '"schema": "wsan.sim_bench/1"' BENCH_sim.json
cp "$simb_dir/BENCH_sim.json" "$fresh_bench_dir/"
rm -rf "$simb_dir"

echo "==> gateway bench smoke (gateway_bench schema + committed snapshot)"
gwb_dir="$(mktemp -d)"
WSAN_RESULTS_DIR="$gwb_dir" ./target/release/gateway_bench --quick
test -s "$gwb_dir/BENCH_gateway.json"
grep -q '"schema": "wsan.gateway_bench/1"' "$gwb_dir/BENCH_gateway.json"
grep -q '"speedup_delta_vs_full"' "$gwb_dir/BENCH_gateway.json"
grep -q '"delta_admissions_per_sec"' "$gwb_dir/BENCH_gateway.json"
# the committed snapshot must track the same schema
grep -q '"schema": "wsan.gateway_bench/1"' BENCH_gateway.json
cp "$gwb_dir/BENCH_gateway.json" "$fresh_bench_dir/"
rm -rf "$gwb_dir"

echo "==> shard bench smoke (shard_bench schema + committed snapshot)"
shb_dir="$(mktemp -d)"
WSAN_RESULTS_DIR="$shb_dir" ./target/release/shard_bench --quick
test -s "$shb_dir/BENCH_shard.json"
grep -q '"schema": "wsan.shard_bench/1"' "$shb_dir/BENCH_shard.json"
grep -q '"speedup_vs_single"' "$shb_dir/BENCH_shard.json"
grep -q '"median_schedule_ns"' "$shb_dir/BENCH_shard.json"
# the committed snapshot must track the same schema
grep -q '"schema": "wsan.shard_bench/1"' BENCH_shard.json
cp "$shb_dir/BENCH_shard.json" "$fresh_bench_dir/"
rm -rf "$shb_dir"

echo "==> graph bench smoke (graph_bench schema + committed snapshot)"
gb_dir="$(mktemp -d)"
WSAN_RESULTS_DIR="$gb_dir" ./target/release/graph_bench --quick
test -s "$gb_dir/BENCH_graph.json"
grep -q '"schema": "wsan.graph_bench/1"' "$gb_dir/BENCH_graph.json"
grep -q '"speedup_parallel_vs_dense"' "$gb_dir/BENCH_graph.json"
grep -q '"median_dense_build_ns"' "$gb_dir/BENCH_graph.json"
grep -q '"queries_equivalent": true' "$gb_dir/BENCH_graph.json"
grep -q '"parallel_identical": true' "$gb_dir/BENCH_graph.json"
# the committed snapshot must track the same schema
grep -q '"schema": "wsan.graph_bench/1"' BENCH_graph.json
cp "$gb_dir/BENCH_graph.json" "$fresh_bench_dir/"
rm -rf "$gb_dir"

echo "==> multi-gateway shard smoke (small plant, stitched validation)"
shard_dir="$(mktemp -d)"
cargo run --release -q -p wsan-cli --bin wsan -- shard --nodes 120 --shards 2 \
    --flows-per-shard 3 --seed 3 --out "$shard_dir/shard.json" > "$shard_dir/shard.log"
cat "$shard_dir/shard.log"
grep -q "validated" "$shard_dir/shard.log"
grep -q '"shards": 2' "$shard_dir/shard.json"
rm -rf "$shard_dir"

echo "==> large-plant shard smoke (5k nodes on the capped-distance path, wall-clock guard)"
big_dir="$(mktemp -d)"
big_start="$(date +%s)"
./target/release/wsan shard --nodes 5000 --shards 8 \
    --flows-per-shard 3 --seed 42 --out "$big_dir/shard.json" > "$big_dir/shard.log"
big_elapsed="$(( $(date +%s) - big_start ))"
cat "$big_dir/shard.log"
grep -q "validated" "$big_dir/shard.log"
grep -q '"shards": 8' "$big_dir/shard.json"
# the whole plan+schedule+stitch+validate pipeline must stay interactive;
# a dense n² hop matrix sneaking back in would blow this budget wide open
test "$big_elapsed" -le 120
rm -rf "$big_dir"

echo "==> bench regression gate (advisory: quick-mode timings are noisy)"
cargo run --release -q -p wsan-bench --bin bench_check -- \
    --fresh "$fresh_bench_dir" --tolerance 1.5 \
    || echo "bench_check: regression beyond tolerance (advisory only in CI)"
rm -rf "$fresh_bench_dir"

echo "==> gateway crash/replay smoke (wsan serve, kill -9 mid-stream)"
gws_dir="$(mktemp -d)"
# the operation stream, split across the crash point
cat > "$gws_dir/before.jsonl" <<'EOF'
{"op":"add_flow","name":"a","source":0,"dest":5,"period":64,"deadline":48}
{"op":"add_flow","name":"b","source":3,"dest":9,"period":64,"deadline":40}
{"op":"add_flow","name":"c","source":10,"dest":2,"period":128,"deadline":96}
EOF
cat > "$gws_dir/after.jsonl" <<'EOF'
{"op":"update_rate","name":"a","period":128,"deadline":100}
{"op":"remove_flow","name":"b"}
{"op":"add_flow","name":"d","source":7,"dest":1,"period":128,"deadline":64}
EOF
# reference: the same stream through one uninterrupted gateway
{
    cat "$gws_dir/before.jsonl" "$gws_dir/after.jsonl"
    printf '{"op":"export","path":"%s/ref.csv"}\n{"op":"shutdown"}\n' "$gws_dir"
} | ./target/release/wsan serve --testbed wustl --seed 1 \
    > "$gws_dir/ref.out" 2> /dev/null
test -s "$gws_dir/ref.csv"
# interrupted: journal every ack, then kill -9 with no chance to flush
mkfifo "$gws_dir/in.fifo"
./target/release/wsan serve --testbed wustl --seed 1 \
    --journal "$gws_dir/wal.jsonl" \
    < "$gws_dir/in.fifo" > "$gws_dir/crash.out" 2> /dev/null &
gws_pid=$!
exec 9> "$gws_dir/in.fifo"
cat "$gws_dir/before.jsonl" >&9
# wait for all three acks: a written response means the WAL record is fsynced
gws_acked=0
for _ in $(seq 1 100); do
    if [ "$(wc -l < "$gws_dir/crash.out")" -ge 3 ]; then gws_acked=1; break; fi
    sleep 0.1
done
test "$gws_acked" -eq 1
kill -9 "$gws_pid" 2> /dev/null || true
wait "$gws_pid" 2> /dev/null || true
exec 9>&-
# restart from the journal and finish the stream
{
    cat "$gws_dir/after.jsonl"
    printf '{"op":"export","path":"%s/resumed.csv"}\n{"op":"shutdown"}\n' "$gws_dir"
} | ./target/release/wsan serve --testbed wustl --seed 1 \
    --resume-journal "$gws_dir/wal.jsonl" \
    > "$gws_dir/resume.out" 2> /dev/null
cmp "$gws_dir/resumed.csv" "$gws_dir/ref.csv"
rm -rf "$gws_dir"

echo "==> status plane smoke (wsan serve --status-socket under churn, kill -9)"
sp_dir="$(mktemp -d)"
mkfifo "$sp_dir/in.fifo"
./target/release/wsan serve --testbed wustl --seed 1 \
    --flightrec 1024 --status-socket "$sp_dir/status.sock" \
    --metrics-out "$sp_dir/metrics.json" --metrics-interval-ms 50 \
    < "$sp_dir/in.fifo" > "$sp_dir/out.jsonl" 2> /dev/null &
sp_pid=$!
exec 8> "$sp_dir/in.fifo"
for _ in $(seq 1 100); do
    if [ -S "$sp_dir/status.sock" ]; then break; fi
    sleep 0.1
done
test -S "$sp_dir/status.sock"
# churn the gateway, then query the plane while it keeps serving
printf '{"op":"add_flow","name":"a","source":0,"dest":5,"period":64,"deadline":48}\n' >&8
printf '{"op":"add_flow","name":"b","source":3,"dest":9,"period":64,"deadline":40}\n' >&8
sp_acked=0
for _ in $(seq 1 100); do
    if [ "$(wc -l < "$sp_dir/out.jsonl")" -ge 2 ]; then sp_acked=1; break; fi
    sleep 0.1
done
test "$sp_acked" -eq 1
./target/release/wsan status --socket "$sp_dir/status.sock" > "$sp_dir/status.json"
grep -q '"ok":true' "$sp_dir/status.json"
grep -q '"flows":2' "$sp_dir/status.json"
./target/release/wsan status --socket "$sp_dir/status.sock" --query metrics > "$sp_dir/metrics-q.json"
grep -q '"gateway.request_us"' "$sp_dir/metrics-q.json"
./target/release/wsan status --socket "$sp_dir/status.sock" --query flightrec > "$sp_dir/flightrec.json"
grep -q '"records"' "$sp_dir/flightrec.json"
# the request loop kept answering throughout the status queries
printf '{"op":"status"}\n' >&8
sp_live=0
for _ in $(seq 1 100); do
    if [ "$(wc -l < "$sp_dir/out.jsonl")" -ge 3 ]; then sp_live=1; break; fi
    sleep 0.1
done
test "$sp_live" -eq 1
# give the periodic flusher one interval, then kill -9: the atomic-rename
# flush must leave a complete, parseable snapshot behind
sleep 0.3
kill -9 "$sp_pid" 2> /dev/null || true
wait "$sp_pid" 2> /dev/null || true
exec 8>&-
test -s "$sp_dir/metrics.json"
grep -q '"quantiles"' "$sp_dir/metrics.json"
grep -q '"gateway.request_us"' "$sp_dir/metrics.json"
rm -rf "$sp_dir"

echo "==> traced-vs-untraced determinism smoke (wsan simulate)"
det_dir="$(mktemp -d)"
./target/release/wsan simulate --testbed wustl --flows 8 --reps 5 --seed 3 \
    --engine events > "$det_dir/plain.out"
./target/release/wsan simulate --testbed wustl --flows 8 --reps 5 --seed 3 \
    --engine events --log-level trace --log-format json \
    --flightrec 4096 --flightrec-dump "$det_dir/dump.jsonl" \
    --metrics-out "$det_dir/metrics.json" \
    > "$det_dir/traced.out" 2> /dev/null
cmp "$det_dir/plain.out" "$det_dir/traced.out"
test -s "$det_dir/dump.jsonl"
./target/release/wsan trace export --in "$det_dir/dump.jsonl" \
    --out "$det_dir/trace.json" --chrome 2> /dev/null
grep -q '"traceEvents"' "$det_dir/trace.json"
rm -rf "$det_dir"

echo "==> campaign interrupt/resume smoke (wsan campaign)"
camp_dir="$(mktemp -d)"
out="$camp_dir/smoke.json"
manifest="$camp_dir/smoke.manifest.jsonl"
# reference aggregate from an uninterrupted run
cargo run --release -q -p wsan-cli --bin wsan -- campaign --name smoke --sets 2 \
    --out "$out" --manifest "$manifest"
cp "$out" "$camp_dir/reference.json"
# simulate a kill during the last checkpoint write: keep the header, the
# first complete point, and a torn third line
head -n 2 "$manifest" > "$manifest.cut"
tail -n +3 "$manifest" | head -n 1 | cut -c 1-10 | tr -d '\n' >> "$manifest.cut"
mv "$manifest.cut" "$manifest"
rm "$out"
cargo run --release -q -p wsan-cli --bin wsan -- campaign --name smoke --sets 2 \
    --out "$out" --manifest "$manifest" --resume
cmp "$out" "$camp_dir/reference.json"
rm -rf "$camp_dir"

echo "CI green."
