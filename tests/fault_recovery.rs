//! End-to-end fault injection and recovery: a mid-run link collapse must
//! drive the supervised detect → repair → re-validate loop to a schedule
//! the independent validator accepts, shedding only the flows that cannot
//! survive — and an *empty* fault plan must leave the simulator
//! bit-identical to a build without fault support.

use proptest::prelude::*;
use wsan::core::{validate, NetworkModel};
use wsan::expr::recovery::{supervise, SupervisorConfig};
use wsan::expr::Algorithm;
use wsan::flow::{FlowSet, FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, ChannelSet, Prr, Topology};
use wsan::sim::{FaultPlan, FaultTrigger, SimConfig, Simulator};

/// A deterministic peer-to-peer workload on the WUSTL stand-in.
fn workload(flow_count: usize, seed: u64) -> (Topology, ChannelSet, FlowSet) {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).expect("valid");
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let cfg = FlowSetConfig::new(
        flow_count,
        PeriodRange::new(0, 0).expect("valid"),
        TrafficPattern::PeerToPeer,
    );
    let set = FlowSetGenerator::new(seed).generate(&comm, &cfg).expect("schedulable workload");
    (topo, channels, set)
}

#[test]
fn mid_run_link_collapse_converges_and_sheds_only_the_doomed_flows() {
    let (topo, channels, set) = workload(12, 3);
    let model = NetworkModel::new(&topo, &channels);
    let rho_t = 2;
    let algo = Algorithm::Rc { rho_t };
    let schedule = algo.build().schedule(&set, &model).expect("schedulable");

    // Collapse the first scheduled link to PRR 0 halfway through the first
    // epoch; the damage is permanent, so `supervise` carries it forward.
    let victim = schedule.entries()[0].tx.link;
    let onset = u64::from(schedule.horizon()) * 6;
    let cfg = SupervisorConfig {
        seed: 0xFEED,
        epochs: 4,
        samples_per_epoch: 6,
        window_reps: 4,
        faults: FaultPlan::new(17).collapse_link_at(onset, victim, 0.0),
        ..SupervisorConfig::default()
    };
    let out = supervise(&topo, &channels, &set, algo, &cfg).expect("supervision ran");

    // The loop converged on a schedule the independent §V-A validator
    // accepts, for exactly the surviving flows.
    assert!(out.summary.converged, "supervisor never returned to a healthy epoch");
    validate::check(&out.schedule, &out.flows, &model, Some(rho_t)).expect("valid residual");

    // Every flow routed over the dead link was shed; no survivor still
    // crosses it, and nothing else was sacrificed.
    let doomed: Vec<usize> =
        set.iter().filter(|f| f.links().contains(&victim)).map(|f| f.id().index()).collect();
    assert!(!doomed.is_empty(), "victim link carried no flow — test is vacuous");
    for d in &doomed {
        assert!(out.summary.shed_flows.contains(d), "doomed flow {d} was not shed");
    }
    for (dense, orig) in out.survivors.iter().enumerate() {
        assert!(!doomed.contains(orig), "doomed flow {orig} survived as {dense}");
        assert!(!out.flows.flow(wsan::flow::FlowId::new(dense)).links().contains(&victim));
    }
    assert_eq!(
        out.summary.shed_flows.len() + out.survivors.len(),
        set.len(),
        "shed + surviving must partition the original flow set"
    );

    // Graceful degradation: the survivors' delivery is within 5 % of the
    // same flows' fault-free PDR.
    let sim = Simulator::new(&topo, &channels, &set, &schedule);
    let baseline = sim
        .run(&SimConfig {
            seed: cfg.seed,
            repetitions: cfg.samples_per_epoch * cfg.window_reps,
            window_reps: cfg.window_reps,
            ..SimConfig::default()
        })
        .flow_pdrs();
    for (dense, orig) in out.survivors.iter().enumerate() {
        assert!(
            out.final_flow_pdr[dense] >= baseline[*orig] - 0.05,
            "survivor {orig}: recovered PDR {} vs fault-free {}",
            out.final_flow_pdr[dense],
            baseline[*orig]
        );
    }
}

#[test]
fn empty_fault_plan_is_bit_identical() {
    let (topo, channels, set) = workload(10, 5);
    let model = NetworkModel::new(&topo, &channels);
    let schedule = Algorithm::Rc { rho_t: 2 }.build().schedule(&set, &model).expect("schedulable");
    let sim = Simulator::new(&topo, &channels, &set, &schedule);

    let plain = sim.run(&SimConfig { seed: 42, repetitions: 20, ..SimConfig::default() });
    let (faulted, log) = sim
        .try_run_faulted(&SimConfig {
            seed: 42,
            repetitions: 20,
            faults: FaultPlan::default(),
            ..SimConfig::default()
        })
        .expect("valid empty plan");
    assert!(log.is_empty());
    assert_eq!(plain, faulted, "an empty fault plan must not perturb the simulation");

    // Byte-for-byte, not just structurally.
    assert_eq!(serde_json::to_string(&plain).unwrap(), serde_json::to_string(&faulted).unwrap());

    // A plan whose events never fire is just as invisible.
    let dormant = FaultPlan::new(7).crash_at(u64::MAX, wsan::net::NodeId::new(0));
    let (quiet, log) = sim
        .try_run_faulted(&SimConfig {
            seed: 42,
            repetitions: 20,
            faults: dormant,
            ..SimConfig::default()
        })
        .expect("valid dormant plan");
    assert_eq!(log.fired(), 0);
    assert_eq!(plain, quiet, "unfired events must not perturb the simulation");
}

#[test]
fn stochastic_faults_leave_the_engine_rng_untouched_until_they_fire() {
    // A stochastic plan with probability 0 draws from the injector's own
    // RNG stream every slot yet never perturbs reception.
    let (topo, channels, set) = workload(8, 9);
    let model = NetworkModel::new(&topo, &channels);
    let schedule = Algorithm::Rc { rho_t: 2 }.build().schedule(&set, &model).expect("schedulable");
    let sim = Simulator::new(&topo, &channels, &set, &schedule);

    let plain = sim.run(&SimConfig { seed: 4, repetitions: 10, ..SimConfig::default() });
    let never = FaultPlan::new(3).with(wsan::sim::FaultEvent {
        trigger: FaultTrigger::Stochastic { per_slot: 0.0 },
        duration: Some(1),
        kind: wsan::sim::FaultKind::CrashNode { node: wsan::net::NodeId::new(1) },
    });
    let (faulted, log) = sim
        .try_run_faulted(&SimConfig {
            seed: 4,
            repetitions: 10,
            faults: never,
            ..SimConfig::default()
        })
        .expect("valid plan");
    assert_eq!(log.fired(), 0);
    assert_eq!(plain, faulted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any seed, an empty fault plan reproduces the fault-free run
    /// bit-for-bit.
    #[test]
    fn empty_plan_identical_for_any_seed(seed in 0u64..10_000) {
        let (topo, channels, set) = workload(6, 11);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = Algorithm::Rc { rho_t: 2 }
            .build()
            .schedule(&set, &model)
            .expect("schedulable");
        let sim = Simulator::new(&topo, &channels, &set, &schedule);
        let cfg = SimConfig { seed, repetitions: 5, ..SimConfig::default() };
        let plain = sim.run(&cfg);
        let (faulted, log) = sim.try_run_faulted(&cfg).expect("empty plan is valid");
        prop_assert!(log.is_empty());
        prop_assert_eq!(plain, faulted);
    }
}
