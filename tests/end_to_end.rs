//! End-to-end integration: topology → graphs → workload → schedule →
//! validation → simulation, across both testbeds and all three algorithms.

use wsan::core::{validate, NetworkModel};
use wsan::expr::Algorithm;
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr, Topology};
use wsan::sim::{SimConfig, Simulator};

fn pipeline(topo: &Topology, pattern: TrafficPattern, flows: usize, seed: u64) {
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    assert!(comm.is_connected(), "communication graph must be connected");
    let model = NetworkModel::new(topo, &channels);
    let cfg = FlowSetConfig::new(flows, PeriodRange::new(0, 2).unwrap(), pattern);
    let set = FlowSetGenerator::new(seed).generate(&comm, &cfg).expect("generation succeeds");

    for algo in Algorithm::paper_suite() {
        let scheduler = algo.build();
        match scheduler.schedule(&set, &model) {
            Ok(schedule) => {
                // every produced schedule passes the independent validator
                let rho_t = match algo {
                    Algorithm::Nr => None,
                    _ => Some(2),
                };
                validate::check(&schedule, &set, &model, rho_t)
                    .unwrap_or_else(|v| panic!("{algo} produced invalid schedule: {v:?}"));
                // and survives simulation with sane outputs
                let sim = Simulator::new(topo, &channels, &set, &schedule);
                let report = sim.run(&SimConfig { repetitions: 10, ..SimConfig::default() });
                let pdr = report.network_pdr();
                assert!(
                    (0.0..=1.0).contains(&pdr) && pdr > 0.5,
                    "{algo}: implausible network PDR {pdr}"
                );
            }
            Err(_) => {
                // NR may legitimately fail under heavy load; reuse must not
                // fail when NR succeeded (checked in paper_claims.rs)
            }
        }
    }
}

#[test]
fn wustl_peer_to_peer_pipeline() {
    let topo = testbeds::wustl(11);
    pipeline(&topo, TrafficPattern::PeerToPeer, 25, 3);
}

#[test]
fn wustl_centralized_pipeline() {
    let topo = testbeds::wustl(11);
    pipeline(&topo, TrafficPattern::Centralized, 12, 4);
}

#[test]
fn indriya_peer_to_peer_pipeline() {
    let topo = testbeds::indriya(12);
    pipeline(&topo, TrafficPattern::PeerToPeer, 30, 5);
}

#[test]
fn indriya_centralized_pipeline() {
    let topo = testbeds::indriya(12);
    pipeline(&topo, TrafficPattern::Centralized, 15, 6);
}

#[test]
fn schedules_are_deterministic_end_to_end() {
    let topo = testbeds::wustl(21);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(20, PeriodRange::new(0, 1).unwrap(), TrafficPattern::PeerToPeer);
    let set_a = FlowSetGenerator::new(9).generate(&comm, &cfg).unwrap();
    let set_b = FlowSetGenerator::new(9).generate(&comm, &cfg).unwrap();
    assert_eq!(set_a, set_b);
    for algo in Algorithm::paper_suite() {
        let s1 = algo.build().schedule(&set_a, &model);
        let s2 = algo.build().schedule(&set_b, &model);
        match (s1, s2) {
            (Ok(a), Ok(b)) => assert_eq!(a.entries(), b.entries(), "{algo} not deterministic"),
            (Err(_), Err(_)) => {}
            _ => panic!("{algo} schedulability not deterministic"),
        }
    }
}

#[test]
fn simulation_reports_are_deterministic() {
    let topo = testbeds::wustl(31);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(15, PeriodRange::new(0, 1).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(2).generate(&comm, &cfg).unwrap();
    let schedule = Algorithm::Ra { rho: 2 }.build().schedule(&set, &model).unwrap();
    let sim = Simulator::new(&topo, &channels, &set, &schedule);
    let cfg_sim = SimConfig { repetitions: 30, seed: 77, ..SimConfig::default() };
    assert_eq!(sim.run(&cfg_sim), sim.run(&cfg_sim));
}

#[test]
fn channel_count_sweep_produces_valid_schedules_at_every_width() {
    // The same workload scheduled at 1..=6 channel offsets: whatever the
    // outcome (the paper notes schedulability is not monotone in channel
    // count), every produced schedule must validate, and a single offset
    // must be the hardest configuration.
    let topo = testbeds::wustl(41);
    let prr_t = Prr::new(0.9).unwrap();
    let base_channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&base_channels, prr_t);
    let cfg = FlowSetConfig::new(20, PeriodRange::new(0, 1).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(5).generate(&comm, &cfg).unwrap();
    let mut ok_somewhere = false;
    for m in [1usize, 2, 3, 4, 5, 6] {
        let model = NetworkModel::new(&topo, &base_channels).with_channels(m);
        if let Ok(schedule) = Algorithm::Nr.build().schedule(&set, &model) {
            ok_somewhere = true;
            assert_eq!(schedule.channel_count(), m);
            validate::check(&schedule, &set, &model, None)
                .unwrap_or_else(|v| panic!("invalid NR schedule at {m} channels: {v:?}"));
        }
    }
    assert!(ok_somewhere, "the workload should fit at some channel count");
}
