//! Classifier quality on synthetic ground truth: we construct PRR sample
//! sets whose cause of degradation is known by construction, and measure
//! the detection policy's precision and recall — the property Figs. 10–11
//! demonstrate anecdotally on the testbed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsan::detect::{DetectionPolicy, LinkVerdict};

/// Draws `n` PRR samples around `mean` with binomial-ish noise from `k`
/// packets per sample.
fn samples(rng: &mut StdRng, mean: f64, n: usize, packets: u32) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let acked = (0..packets).filter(|_| rng.gen::<f64>() < mean).count();
            acked as f64 / f64::from(packets)
        })
        .collect()
}

#[test]
fn classifier_recall_on_reuse_degraded_links() {
    let policy = DetectionPolicy::default();
    let mut rng = StdRng::seed_from_u64(1);
    let trials = 200;
    let mut detected = 0;
    for _ in 0..trials {
        // ground truth: reuse knocks PRR from ~0.97 down to ~0.7
        let cf = samples(&mut rng, 0.97, 18, 20);
        let reuse = samples(&mut rng, 0.70, 18, 20);
        if policy.classify(&reuse, &cf) == LinkVerdict::ReuseDegraded {
            detected += 1;
        }
    }
    let recall = detected as f64 / trials as f64;
    assert!(recall > 0.95, "recall {recall} too low for a 27-point PRR gap");
}

#[test]
fn classifier_rejects_external_causes_rarely_blames_reuse() {
    let policy = DetectionPolicy::default();
    let mut rng = StdRng::seed_from_u64(2);
    let trials = 200;
    let mut false_blame = 0;
    for _ in 0..trials {
        // ground truth: external interference degrades both conditions alike
        let cf = samples(&mut rng, 0.72, 18, 20);
        let reuse = samples(&mut rng, 0.72, 18, 20);
        if policy.classify(&reuse, &cf) == LinkVerdict::ReuseDegraded {
            false_blame += 1;
        }
    }
    // α = 0.05 bounds the false-rejection rate of the K-S test
    let rate = false_blame as f64 / trials as f64;
    assert!(rate < 0.10, "false-blame rate {rate} exceeds the significance budget");
}

#[test]
fn classifier_keeps_healthy_links_out_of_the_report() {
    let policy = DetectionPolicy::default();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..100 {
        let cf = samples(&mut rng, 0.985, 18, 25);
        let reuse = samples(&mut rng, 0.96, 18, 25);
        assert_eq!(policy.classify(&reuse, &cf), LinkVerdict::Healthy);
    }
}

#[test]
fn small_gaps_near_the_threshold_are_resolved_by_the_gate_not_the_test() {
    // The PRR gate (not the K-S test) decides whether a link is examined:
    // a link at 0.91 under reuse is healthy even if its distribution
    // clearly shifted; a link at 0.89 is examined.
    let policy = DetectionPolicy::default();
    let cf: Vec<f64> = vec![1.0; 18];
    let reuse_above: Vec<f64> = vec![0.91; 18];
    let reuse_below: Vec<f64> = vec![0.89; 18];
    assert_eq!(policy.classify(&reuse_above, &cf), LinkVerdict::Healthy);
    assert_eq!(policy.classify(&reuse_below, &cf), LinkVerdict::ReuseDegraded);
}

#[test]
fn sample_size_matters_for_power() {
    // With only 4 samples per side, a moderate shift is not significant;
    // with 18 (the paper's epoch size) it is.
    let policy = DetectionPolicy::default();
    let mut rng = StdRng::seed_from_u64(4);
    let cf_small = samples(&mut rng, 0.97, 4, 20);
    let reuse_small = samples(&mut rng, 0.85, 4, 20);
    let small = policy.classify(&reuse_small, &cf_small);
    // (not asserted Reject — 4 points rarely reach α = 0.05 with K-S)
    assert_ne!(small, LinkVerdict::Healthy);
    let cf_full = samples(&mut rng, 0.97, 18, 20);
    let reuse_full = samples(&mut rng, 0.85, 18, 20);
    assert_eq!(policy.classify(&reuse_full, &cf_full), LinkVerdict::ReuseDegraded);
}
