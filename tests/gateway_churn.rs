//! The gateway's central contract, pinned property-based: after **every**
//! delta operation in a random churn sequence, the incrementally maintained
//! schedule is byte-identical to scheduling the surviving flow set from
//! scratch. Plus crash-safety integration tests: a journal with a torn or
//! garbage tail resumes to exactly the acknowledged state.

use proptest::prelude::*;
use wsan::core::gateway::journal::JournalHeader;
use wsan::core::gateway::service::GatewayService;
use wsan::core::gateway::{FlowSpec, GatewayConfig, GatewayState};
use wsan::core::{export, NetworkModel, ReuseConservatively, Scheduler};
use wsan::flow::Period;
use wsan::net::{CommGraph, NodeId, ReuseGraph, Route};

/// A small line network: reuse graph and matching communication graph over
/// the path `0 — 1 — … — n-1`.
fn line_network(nodes: usize, channels: usize) -> NetworkModel {
    let edges: Vec<(NodeId, NodeId)> =
        (0..nodes - 1).map(|i| (NodeId::new(i), NodeId::new(i + 1))).collect();
    NetworkModel::from_reuse_graph(&ReuseGraph::from_edges(nodes, &edges), channels)
}

fn rc_gateway(nodes: usize, channels: usize) -> GatewayState {
    GatewayState::new(
        line_network(nodes, channels),
        Box::new(ReuseConservatively::new(2)),
        GatewayConfig { rho_t: Some(2), ..GatewayConfig::default() },
    )
}

/// A route along consecutive path nodes `a..=b` (either direction).
fn line_route(a: usize, b: usize) -> Route {
    let nodes: Vec<NodeId> = if a <= b {
        (a..=b).map(NodeId::new).collect()
    } else {
        (b..=a).rev().map(NodeId::new).collect()
    };
    Route::new(nodes)
}

/// One random churn operation, decoded from raw draws: `kind` 0-3 admits,
/// 4-5 removes, 6-7 re-rates.
#[derive(Debug, Clone)]
enum Op {
    Add { a: usize, b: usize, period_exp: u32, dfrac: u8 },
    Remove { pick: usize },
    Update { pick: usize, period_exp: u32, dfrac: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..8, 0usize..6, 0usize..6, 0u32..3, 0u8..=254).prop_map(
        |(kind, a, b, period_exp, dfrac)| match kind {
            0..=3 => Op::Add { a, b, period_exp, dfrac },
            4 | 5 => Op::Remove { pick: a * 7 + b },
            _ => Op::Update { pick: a * 7 + b, period_exp, dfrac },
        },
    )
}

/// Timing from the raw draws: period in {8, 16, 32} slots, deadline a
/// fraction of the period but at least the route's retry-doubled length.
fn timing(period_exp: u32, dfrac: u8, hops: u32) -> (Period, u32) {
    let slots = 8u32 << period_exp;
    let min_d = (2 * hops).clamp(1, slots);
    let deadline = (u32::from(dfrac) * slots / 256).clamp(min_d, slots);
    (Period::from_slots(slots).expect("nonzero"), deadline)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ≥1000 random delta operations in total (128 cases × 10 ops): after
    /// every single one, the gateway's schedule equals a fresh
    /// recompute-from-scratch of its surviving flow set.
    #[test]
    fn every_delta_equals_recompute_from_scratch(ops in proptest::collection::vec(arb_op(), 10..11)) {
        let oracle = ReuseConservatively::new(2);
        let mut gw = rc_gateway(6, 2);
        let mut next = 0usize;
        for op in ops {
            match op {
                Op::Add { a, b, period_exp, dfrac } => {
                    if a == b {
                        continue;
                    }
                    let route = line_route(a, b);
                    let (period, deadline) = timing(period_exp, dfrac, route.hop_count() as u32);
                    let name = format!("f{next}");
                    if gw.add_flow(&name, FlowSpec { route, period, deadline_slots: deadline }).is_ok() {
                        next += 1;
                    }
                }
                Op::Remove { pick } => {
                    if !gw.is_empty() {
                        let name = gw.flow_names()[pick % gw.len()].to_string();
                        gw.remove_flow(&name).expect("existing flow removes cleanly");
                    }
                }
                Op::Update { pick, period_exp, dfrac } => {
                    if !gw.is_empty() {
                        let name = gw.flow_names()[pick % gw.len()].to_string();
                        let hops = gw.spec(&name).expect("admitted").route.hop_count() as u32;
                        let (period, deadline) = timing(period_exp, dfrac, hops);
                        let _ = gw.update_rate(&name, period, deadline);
                    }
                }
            }
            let fresh = oracle
                .schedule(&gw.flow_set(), gw.model())
                .expect("admitted set stays schedulable");
            prop_assert_eq!(
                &fresh,
                gw.schedule(),
                "delta schedule diverged from recompute after {} flows",
                gw.len()
            );
        }
    }
}

// ---- crash-safety integration -----------------------------------------------

fn service(tag: &str) -> (GatewayService, std::path::PathBuf) {
    let nodes = 8;
    let edges: Vec<(NodeId, NodeId)> =
        (0..nodes - 1).map(|i| (NodeId::new(i), NodeId::new(i + 1))).collect();
    let comm = CommGraph::from_edges(nodes, &edges);
    let state = GatewayState::new(
        line_network(nodes, 2),
        Box::new(ReuseConservatively::new(2)),
        GatewayConfig::default(),
    );
    let svc = GatewayService::new(state, comm, JournalHeader::new("line8", "rc/2"));
    let dir = std::env::temp_dir().join("wsan-gateway-churn");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.jsonl", std::process::id()));
    (svc, path)
}

const SCRIPT: &[&str] = &[
    r#"{"op":"add_flow","name":"a","source":0,"dest":2,"period":64,"deadline":48}"#,
    r#"{"op":"add_flow","name":"b","source":3,"dest":5,"period":64,"deadline":32}"#,
    r#"{"op":"add_flow","name":"a","source":0,"dest":2,"period":64,"deadline":48}"#, // duplicate
    r#"{"op":"update_rate","name":"a","period":128,"deadline":100}"#,
    r#"{"op":"add_flow","name":"c","source":5,"dest":7,"period":128,"deadline":90}"#,
    r#"{"op":"remove_flow","name":"b"}"#,
    r#"{"op":"retire_link","tx":6,"rx":7}"#,
];

/// The canonical crash test: run a script journaled, "crash" (drop without
/// shutdown), restart from the journal, and require the byte-identical
/// schedule export.
#[test]
fn journal_resume_reproduces_the_acknowledged_schedule() {
    let (mut svc, path) = service("resume");
    svc.journal_create(&path).unwrap();
    for line in SCRIPT {
        let _ = svc.handle_line(line);
    }
    let reference = export::to_csv(svc.state().schedule());
    drop(svc); // kill -9: no shutdown, no flush beyond the per-op fsyncs

    let (mut restored, _) = service("unused");
    let replayed = restored.journal_resume(&path).unwrap();
    assert_eq!(replayed, 6, "the duplicate admission must not be journaled");
    assert_eq!(export::to_csv(restored.state().schedule()), reference);
    std::fs::remove_file(&path).unwrap();
}

/// A torn final record — half a JSON line, as a real `kill -9` mid-write
/// leaves behind — is truncated away; the journal resumes to the prefix.
#[test]
fn torn_tail_is_truncated_and_prefix_replayed() {
    let (mut svc, path) = service("torn");
    svc.journal_create(&path).unwrap();
    for line in &SCRIPT[..2] {
        let _ = svc.handle_line(line);
    }
    let reference = export::to_csv(svc.state().schedule());
    drop(svc);

    // simulate the torn write: an unterminated half-record at the tail
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
    file.write_all(b"{\"seq\":2,\"op\":{\"add_fl").unwrap();
    drop(file);

    let (mut restored, _) = service("unused");
    let replayed = restored.journal_resume(&path).unwrap();
    assert_eq!(replayed, 2);
    assert_eq!(export::to_csv(restored.state().schedule()), reference);

    // and the truncation is durable: resuming again sees a clean journal
    let (mut again, _) = service("unused");
    assert_eq!(again.journal_resume(&path).unwrap(), 2);
    std::fs::remove_file(&path).unwrap();
}

/// Resuming against a different network/algorithm configuration must be
/// refused — replaying ops against the wrong model would fabricate a
/// schedule the original gateway never acknowledged.
#[test]
fn mismatched_journal_header_is_refused() {
    let (mut svc, path) = service("header");
    svc.journal_create(&path).unwrap();
    let _ = svc.handle_line(SCRIPT[0]);
    drop(svc);

    let nodes = 8;
    let edges: Vec<(NodeId, NodeId)> =
        (0..nodes - 1).map(|i| (NodeId::new(i), NodeId::new(i + 1))).collect();
    let state = GatewayState::new(
        line_network(nodes, 2),
        Box::new(ReuseConservatively::new(2)),
        GatewayConfig::default(),
    );
    let mut other = GatewayService::new(
        state,
        CommGraph::from_edges(nodes, &edges),
        JournalHeader::new("line8", "nr"), // different algorithm identity
    );
    let err = other.journal_resume(&path).unwrap_err();
    assert!(err.to_string().contains("journal header"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

/// Paranoid mode re-checks every accepted delta with the independent
/// validator in release builds too; on a clean engine this is invisible.
#[test]
fn paranoid_gateway_behaves_identically() {
    let mut plain = rc_gateway(6, 2);
    let mut paranoid = GatewayState::new(
        line_network(6, 2),
        Box::new(ReuseConservatively::new(2)),
        GatewayConfig { rho_t: Some(2), paranoid: true, ..GatewayConfig::default() },
    );
    for (i, (a, b)) in [(0usize, 2usize), (3, 5), (1, 4)].iter().enumerate() {
        let route = line_route(*a, *b);
        let spec = FlowSpec { route, period: Period::from_slots(32).unwrap(), deadline_slots: 24 };
        plain.add_flow(&format!("f{i}"), spec.clone()).unwrap();
        paranoid.add_flow(&format!("f{i}"), spec).unwrap();
    }
    assert_eq!(plain.schedule(), paranoid.schedule());
}
