//! Integration: the full detect → repair → re-simulate loop recovers the
//! reliability of reuse-degraded links (the operational purpose of §VI).

use wsan::core::{repair, validate, NetworkModel};
use wsan::detect::DetectionPolicy;
use wsan::expr::Algorithm;
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr};
use wsan::sim::{LinkCondition, SimConfig, Simulator};

#[test]
fn detect_repair_resimulate_recovers_prr() {
    let topology = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topology.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topology, &channels);
    let config =
        FlowSetConfig::new(110, PeriodRange::new(0, 0).unwrap(), TrafficPattern::PeerToPeer);
    let flows = FlowSetGenerator::new(0xFEED).generate(&comm, &config).unwrap();
    let schedule = Algorithm::Ra { rho: 2 }.build().schedule(&flows, &model).expect("RA schedules");

    let sim_cfg = SimConfig { repetitions: 120, window_reps: 10, ..SimConfig::default() };
    let before = Simulator::new(&topology, &channels, &flows, &schedule).run(&sim_cfg);

    // classify reuse-involved links with the paper's policy
    let policy = DetectionPolicy::default();
    let mut rejected = Vec::new();
    for link in before.links_with_reuse() {
        let reuse = before.prr_distribution(link, LinkCondition::Reuse);
        let cf = before.prr_distribution(link, LinkCondition::ContentionFree);
        if policy.classify(&reuse, &cf) == wsan::detect::LinkVerdict::ReuseDegraded {
            rejected.push(link);
        }
    }
    assert!(
        rejected.len() >= 5,
        "dense RA workload should produce clearly degraded links, got {}",
        rejected.len()
    );

    // repair and re-validate
    let (repaired, report) = repair::reassign_degraded(&schedule, &model, &flows, 2, &rejected)
        .expect("schedule and flow set are consistent");
    assert!(report.repaired_jobs.len() + report.failed_jobs.len() > 0);
    validate::check(&repaired, &flows, &model, Some(2)).expect("repaired schedule is valid");

    // every successfully repaired rejected link must now be contention-free
    let failed_links: std::collections::HashSet<_> = report
        .failed_jobs
        .iter()
        .flat_map(|(f, j)| {
            repaired
                .entries()
                .iter()
                .filter(move |e| e.tx.flow == *f && e.tx.job_index == *j)
                .map(|e| e.tx.link)
        })
        .collect();
    for (_, _, cell) in repaired.occupied_cells() {
        if cell.len() > 1 {
            for tx in cell {
                assert!(
                    !rejected.contains(&tx.link) || failed_links.contains(&tx.link),
                    "rejected link {} still shares a cell after repair",
                    tx.link
                );
            }
        }
    }

    // re-simulate: the repaired links' PRR improves in aggregate
    let after = Simulator::new(&topology, &channels, &flows, &repaired).run(&sim_cfg);
    let mean = |report: &wsan::sim::SimReport, cond_first: LinkCondition| {
        let mut sum = 0.0;
        let mut n = 0usize;
        for link in &rejected {
            let value = report
                .overall_prr(*link, cond_first)
                .or_else(|| report.overall_prr(*link, LinkCondition::Reuse))
                .or_else(|| report.overall_prr(*link, LinkCondition::ContentionFree));
            if let Some(v) = value {
                sum += v;
                n += 1;
            }
        }
        sum / n.max(1) as f64
    };
    let before_prr = mean(&before, LinkCondition::Reuse);
    let after_prr = mean(&after, LinkCondition::ContentionFree);
    assert!(
        after_prr > before_prr + 0.02,
        "repair should lift the rejected links' PRR: {before_prr:.3} → {after_prr:.3}"
    );
    assert!(
        after.network_pdr() >= before.network_pdr() - 1e-9,
        "repair must not hurt the network: {} → {}",
        before.network_pdr(),
        after.network_pdr()
    );
}
