//! Workspace-level check of §II's positioning: under deadline-constrained
//! delivery, managed conservative reuse beats the autonomous best-effort
//! slotframe on the same workload and radio.

use wsan::core::orchestra::AutonomousSlotframe;
use wsan::core::NetworkModel;
use wsan::expr::Algorithm;
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr};
use wsan::sim::{AutonomousSimulator, SimConfig, Simulator};

#[test]
fn managed_reuse_beats_autonomous_on_deadline_pdr() {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(30, PeriodRange::new(-1, 0).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(0x0DDC0DE ^ 1).generate(&comm, &cfg).unwrap();

    let schedule =
        Algorithm::Rc { rho_t: 2 }.build().schedule(&set, &model).expect("RC schedules 30 flows");
    let sim_cfg = SimConfig { repetitions: 40, discovery_probes: 0, ..SimConfig::default() };
    let managed = Simulator::new(&topo, &channels, &set, &schedule).run(&sim_cfg);

    let frame = AutonomousSlotframe::receiver_based(topo.node_count(), 17, channels.len());
    let autonomous = AutonomousSimulator::new(&topo, &channels, &set, &frame).run(&sim_cfg);

    assert!(
        managed.network_pdr() > autonomous.network_pdr() + 0.05,
        "managed {} must clearly beat autonomous {}",
        managed.network_pdr(),
        autonomous.network_pdr()
    );
    assert!(
        managed.worst_flow_pdr() > autonomous.worst_flow_pdr(),
        "worst-flow ordering must hold: managed {} vs autonomous {}",
        managed.worst_flow_pdr(),
        autonomous.worst_flow_pdr()
    );
}

#[test]
fn autonomous_degrades_gracefully_with_frame_length() {
    // longer slotframes = fewer wake-ups = more deadline misses; the trend
    // must be monotone (up to simulation noise, hence generous steps)
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let cfg = FlowSetConfig::new(20, PeriodRange::new(-1, 0).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(0x0DDC0DE ^ 2).generate(&comm, &cfg).unwrap();
    let sim_cfg = SimConfig { repetitions: 30, discovery_probes: 0, ..SimConfig::default() };
    let pdr_at = |len: u32| {
        let frame = AutonomousSlotframe::receiver_based(topo.node_count(), len, channels.len());
        AutonomousSimulator::new(&topo, &channels, &set, &frame).run(&sim_cfg).network_pdr()
    };
    let short = pdr_at(7);
    let long = pdr_at(47);
    assert!(short > long, "a 7-slot frame ({short}) must outperform a 47-slot frame ({long})");
}
