//! Property tests over the city-plant generator and the multi-gateway
//! sharding pipeline: for arbitrary plant layouts and seeds, the generated
//! plant is connected, the shard partition is an exact cover, every
//! generated flow rides links the plant actually provides, and the stitched
//! whole-network schedule passes the independent validator — byte-identical
//! whether the shards were scheduled sequentially or on the worker pool.

use proptest::prelude::*;
use wsan::core::shard::{self, ShardConfig};
use wsan::expr::sharding::{schedule_digest, schedule_sharded};
use wsan::expr::Algorithm;
use wsan::net::plants::{generate, PlantConfig};
use wsan::net::propagation::PropagationModel;
use wsan::net::{ChannelId, Prr};

/// Small-but-varied plant layouts: 1–4 buildings, 1–2 floors, dense enough
/// per floor that the generator can find a connected candidate and shards
/// can still route peer-to-peer flows.
fn arb_plant() -> impl Strategy<Value = (PlantConfig, u64)> {
    (1usize..=2, 1usize..=2, 1usize..=2, 12usize..=18, 8.0f64..13.0, 0u64..1_000).prop_map(
        |(bx, by, floors, npf, gap, seed)| {
            let config = PlantConfig {
                name: format!("prop-{bx}x{by}x{floors}x{npf}"),
                buildings_x: bx,
                buildings_y: by,
                floors,
                nodes_per_floor: npf,
                building_width_m: 40.0,
                building_depth_m: 20.0,
                street_gap_m: gap,
                model: PropagationModel::default(),
                channel_offset_sigma_db: 1.5,
            };
            (config, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated plant is connected at the scheduling threshold and
    /// regenerating with the same seed reproduces the topology exactly.
    #[test]
    fn plant_is_connected_and_seed_reproducible((config, seed) in arb_plant()) {
        let plant = generate(&config, seed);
        prop_assert_eq!(plant.node_count(), config.node_count());
        let comm = plant.comm_graph(&ChannelId::all(), Prr::new(0.9).unwrap());
        prop_assert!(comm.is_connected(), "plant {} seed {seed} is disconnected", plant.name());
        let again = generate(&config, seed);
        prop_assert_eq!(plant.links(), again.links(), "topology is not seed-deterministic");
    }

    /// The gateway partition is an exact cover: every node lands in exactly
    /// one shard, and the inverse map agrees with the shard node lists.
    #[test]
    fn shard_partition_covers_every_node_exactly_once(
        (config, seed) in arb_plant(),
        shards in 1usize..=3,
    ) {
        let plant = generate(&config, seed);
        let plan = shard::plan(&plant, &ChannelId::all(), &ShardConfig::new(shards, seed, 2), 1)
            .expect("planning a small connected plant");
        let mut owners = vec![0usize; plant.node_count()];
        for s in plan.shards() {
            for &node in &s.nodes {
                owners[node.index()] += 1;
                prop_assert_eq!(plan.shard_of(node), s.index, "inverse map disagrees");
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1), "partition is not an exact cover");
    }

    /// Every flow a shard problem carries routes over links the plant
    /// really provides at the admission threshold, in both directions on
    /// every channel, entirely inside its own shard.
    #[test]
    fn every_generated_flow_route_exists_on_the_plant(
        (config, seed) in arb_plant(),
        shards in 1usize..=2,
    ) {
        let plant = generate(&config, seed);
        let channels = ChannelId::all();
        let cfg = ShardConfig::new(shards, seed, 2);
        let plan = shard::plan(&plant, &channels, &cfg, 1).expect("planning");
        for index in 0..shards {
            let problem = shard::build_problem(&plant, &channels, &plan, &cfg, index, 1)
                .expect("building the shard problem");
            for flow in problem.flows.iter() {
                for route in flow.segments() {
                    for pair in route.nodes().windows(2) {
                        let tx = problem.local_to_global[pair[0].index()];
                        let rx = problem.local_to_global[pair[1].index()];
                        prop_assert_eq!(plan.shard_of(tx), index, "route leaves its shard");
                        prop_assert_eq!(plan.shard_of(rx), index, "route leaves its shard");
                        for ch in channels.iter() {
                            let fwd = plant.prr(tx, rx, ch).value();
                            let rev = plant.prr(rx, tx, ch).value();
                            prop_assert!(
                                fwd >= cfg.prr_t.value() && rev >= cfg.prr_t.value(),
                                "flow rides {tx}->{rx} with PRR {fwd:.3}/{rev:.3} on {ch}"
                            );
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    // End-to-end sharded scheduling is the expensive property; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The stitched whole-network schedule passes the independent validator
    /// and is byte-identical between a sequential run and the worker pool.
    #[test]
    fn stitched_schedule_validates_and_is_pool_deterministic(
        (config, seed) in arb_plant(),
        shards in 1usize..=2,
    ) {
        let plant = generate(&config, seed);
        let channels = ChannelId::all();
        let cfg = ShardConfig::new(shards, seed, 2);
        let algo = Algorithm::Rc { rho_t: 2 };
        let sequential = schedule_sharded(&plant, &channels, &cfg, &algo, 1)
            .expect("sequential sharded scheduling");
        let pooled = schedule_sharded(&plant, &channels, &cfg, &algo, 4)
            .expect("pooled sharded scheduling");
        prop_assert_eq!(&sequential.schedule, &pooled.schedule, "pool changed the schedule");
        prop_assert_eq!(sequential.report.digest, pooled.report.digest);
        prop_assert_eq!(
            schedule_digest(&sequential.schedule),
            sequential.report.digest,
            "reported digest does not match the stitched schedule"
        );
        let verdict =
            shard::validate_stitched(&plant, &channels, cfg.reuse_floor, &sequential.schedule);
        prop_assert!(verdict.is_ok(), "stitched schedule violates: {:?}", verdict.unwrap_err());
    }
}

/// The acceptance-scale pin: a 1,000+-node city plant schedules across four
/// gateway shards, the stitched schedule passes the whole-network validator,
/// and the worker pool reproduces the sequential bytes exactly.
#[test]
fn thousand_node_plant_schedules_across_four_shards() {
    let config = PlantConfig::city("city-1000", 1_000);
    let plant = generate(&config, 7);
    assert!(plant.node_count() >= 1_000, "city preset undershot: {}", plant.node_count());
    let channels = ChannelId::all();
    let cfg = ShardConfig { flows_per_shard: 4, ..ShardConfig::new(4, 7, 0) };
    let algo = Algorithm::Rc { rho_t: 2 };
    let sequential =
        schedule_sharded(&plant, &channels, &cfg, &algo, 1).expect("sequential sharded scheduling");
    let pooled =
        schedule_sharded(&plant, &channels, &cfg, &algo, 0).expect("pooled sharded scheduling");
    assert_eq!(sequential.plan.shards().len(), 4);
    assert_eq!(sequential.report.flows, 16);
    assert_eq!(sequential.schedule, pooled.schedule, "pool changed the schedule");
    assert_eq!(sequential.report.digest, pooled.report.digest);
    shard::validate_stitched(&plant, &channels, cfg.reuse_floor, &sequential.schedule)
        .expect("stitched 1,000-node schedule must be interference-free");
}
