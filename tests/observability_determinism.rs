//! A seeded simulation run with the observability layer switched on (null
//! subscriber installed, metrics recording) must be bit-identical to the
//! plain uninstrumented run: instrumentation never draws from the engine
//! RNG and never changes control flow.

use std::sync::Arc;
use wsan::core::{NetworkModel, Scheduler};
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, NodeId, Prr};
use wsan::sim::{FaultPlan, SimConfig, Simulator};

/// Builds a small WUSTL workload, runs the simulator (with a fault plan so
/// the injector paths execute too) and returns the serialized report.
fn seeded_run() -> String {
    let topo = testbeds::wustl(3);
    let channels = ChannelId::range(11, 14).expect("valid channels");
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let model = NetworkModel::new(&topo, &channels);
    let cfg =
        FlowSetConfig::new(12, PeriodRange::new(0, 1).expect("valid"), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(9).generate(&comm, &cfg).expect("workload");
    let schedule =
        wsan::core::ReuseConservatively::new(2).schedule(&set, &model).expect("schedulable");
    let victim = schedule.entries()[0].tx.link;
    let faults = FaultPlan::new(0xF00D)
        .collapse_link_at(u64::from(schedule.horizon()) * 5, victim, 0.0)
        .crash_at(u64::from(schedule.horizon()) * 10, NodeId::new(3));
    let config = SimConfig { seed: 42, repetitions: 20, faults, ..SimConfig::default() };
    let sim = Simulator::new(&topo, &channels, &set, &schedule);
    let (report, _log) = sim.run_faulted(&config);
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn null_subscriber_and_metrics_do_not_change_a_seeded_run() {
    // baseline: observability fully off (the library default)
    wsan::obs::uninstall();
    wsan::obs::set_metrics_enabled(false);
    let baseline = seeded_run();

    // instrumented: always-off subscriber installed, metrics recording
    wsan::obs::install(Arc::new(wsan::obs::NullSubscriber));
    wsan::obs::set_metrics_enabled(true);
    let instrumented = seeded_run();

    wsan::obs::uninstall();
    wsan::obs::set_metrics_enabled(false);
    assert_eq!(baseline, instrumented, "observability must not perturb the simulation");

    // and the metrics side actually observed the run
    let snapshot = wsan::obs::global_metrics().snapshot();
    assert!(snapshot.counters.get("sim.tx").copied().unwrap_or(0) > 0);
    assert!(snapshot.counters.get("core.schedule.runs").copied().unwrap_or(0) > 0);

    // full-bore: live tracing at trace level into an in-memory JSON sink,
    // flight recorder armed, metrics on — the report must STILL be
    // byte-identical, because instrumentation never draws from the engine
    // RNG and never changes control flow.
    let sink = wsan::obs::SharedBuffer::new();
    wsan::obs::install(Arc::new(wsan::obs::JsonLinesSubscriber::new(
        wsan::obs::Level::Trace,
        sink.clone(),
    )));
    wsan::obs::set_metrics_enabled(true);
    let recorder = wsan::obs::flightrec::arm(4096, wsan::obs::Level::Trace);
    let traced = seeded_run();
    wsan::obs::flightrec::disarm();
    wsan::obs::uninstall();
    wsan::obs::set_metrics_enabled(false);
    assert_eq!(baseline, traced, "tracing + flight recorder must not perturb the simulation");
    assert!(recorder.recorded() > 0, "the armed recorder must have captured the run");
    for record in recorder.dump() {
        // every ring record round-trips through its serde form
        let line = serde_json::to_string(&record).expect("record serializes");
        let back: wsan::obs::FlightRecord = serde_json::from_str(&line).expect("record parses");
        assert_eq!(record, back);
    }
}
