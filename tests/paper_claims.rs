//! Qualitative claims of the paper, verified end to end on the synthetic
//! testbeds. These are the "shape" assertions behind the figures: who wins
//! and in which direction, not absolute magnitudes.

use wsan::core::{metrics, NetworkModel};
use wsan::detect::{DetectionPolicy, LinkVerdict};
use wsan::expr::reliability::{evaluate as reliability, ReliabilityConfig};
use wsan::expr::schedulable::{ratio_at, WorkloadConfig};
use wsan::expr::Algorithm;
use wsan::flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan::net::{testbeds, ChannelId, Prr};

fn ratio(topo: &wsan::net::Topology, m: usize, flows: usize, algo: Algorithm) -> f64 {
    let cfg = WorkloadConfig {
        flow_sets: 20,
        seed: 7,
        ..WorkloadConfig::new(flows, PeriodRange::new(0, 2).unwrap(), TrafficPattern::PeerToPeer)
    };
    ratio_at(topo, m, &[algo], &cfg)[0].1
}

/// §VII-A: "RA and RC consistently outperform NR, especially when there are
/// a limited number of channels."
#[test]
fn claim_reuse_beats_nr_under_few_channels() {
    let topo = testbeds::wustl(1);
    // grow the load until NR starts failing, then compare at that point
    let mut flows = 60;
    let nr = loop {
        let r = ratio(&topo, 3, flows, Algorithm::Nr);
        if r < 0.8 || flows >= 240 {
            break r;
        }
        flows += 30;
    };
    assert!(nr < 0.8, "could not load NR past its capacity (ratio {nr} at {flows} flows)");
    let ra = ratio(&topo, 3, flows, Algorithm::Ra { rho: 2 });
    let rc = ratio(&topo, 3, flows, Algorithm::Rc { rho_t: 2 });
    assert!(ra > nr, "RA ({ra}) must beat NR ({nr}) at 3 channels, {flows} flows");
    assert!(rc > nr, "RC ({rc}) must beat NR ({nr}) at 3 channels, {flows} flows");
}

/// §VII-A: under light load "channel reuse is not needed since flows can be
/// scheduled easily" — all three algorithms reach full schedulability.
#[test]
fn claim_light_load_schedules_everywhere() {
    let topo = testbeds::wustl(1);
    for algo in Algorithm::paper_suite() {
        let r = ratio(&topo, 8, 10, algo);
        assert!(r >= 0.95, "{algo} only schedules {r} of light workloads");
    }
}

/// §IV-C / §VII-B: RC introduces strictly less channel reuse than RA, and
/// does not reuse at all when the workload fits without it.
#[test]
fn claim_rc_is_conservative() {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);

    // light workload: RC must produce zero shared cells
    let light = FlowSetGenerator::new(3)
        .generate(
            &comm,
            &FlowSetConfig::new(10, PeriodRange::new(0, 1).unwrap(), TrafficPattern::PeerToPeer),
        )
        .unwrap();
    let rc_light = Algorithm::Rc { rho_t: 2 }.build().schedule(&light, &model).unwrap();
    let m_light = metrics::compute(&rc_light, &model);
    assert_eq!(m_light.no_reuse_fraction(), 1.0, "RC reused channels under light load");

    // heavier workload: RC reuses less than RA
    let heavy = FlowSetGenerator::new(3)
        .generate(
            &comm,
            &FlowSetConfig::new(60, PeriodRange::new(-1, 0).unwrap(), TrafficPattern::PeerToPeer),
        )
        .unwrap();
    let ra = Algorithm::Ra { rho: 2 }.build().schedule(&heavy, &model).unwrap();
    let rc = Algorithm::Rc { rho_t: 2 }.build().schedule(&heavy, &model).unwrap();
    let ra_m = metrics::compute(&ra, &model);
    let rc_m = metrics::compute(&rc, &model);
    assert!(
        rc_m.no_reuse_fraction() > ra_m.no_reuse_fraction(),
        "RC ({}) must keep more cells exclusive than RA ({})",
        rc_m.no_reuse_fraction(),
        ra_m.no_reuse_fraction()
    );
}

/// §VII-B: when RC does reuse, it does so at hop distances no smaller than
/// RA's typical distance — RC's reuse histogram is shifted toward larger
/// hop counts.
#[test]
fn claim_rc_reuses_at_larger_hop_distance() {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 12).unwrap(); // scarce channels force reuse
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    // search downward for a load both RA and RC can schedule (heavy first,
    // so RC is actually forced to reuse)
    let (ra, rc) = (20..=50)
        .rev()
        .step_by(5)
        .find_map(|n| {
            let set = FlowSetGenerator::new(4)
                .generate(
                    &comm,
                    &FlowSetConfig::new(
                        n,
                        PeriodRange::new(-1, 0).unwrap(),
                        TrafficPattern::PeerToPeer,
                    ),
                )
                .ok()?;
            let ra = Algorithm::Ra { rho: 2 }.build().schedule(&set, &model).ok()?;
            let rc = Algorithm::Rc { rho_t: 2 }.build().schedule(&set, &model).ok()?;
            Some((ra, rc))
        })
        .expect("some load is schedulable by both RA and RC");
    let mean_hops = |s| {
        let h = &metrics::compute(s, &model).reuse_hop_count;
        if h.total() == 0 {
            return f64::NAN;
        }
        h.iter().map(|(c, n)| (c as u64 * n) as f64).sum::<f64>() / h.total() as f64
    };
    let ra_hops = mean_hops(&ra);
    let rc_hops = mean_hops(&rc);
    if rc_hops.is_nan() {
        // RC needed no reuse at all — even more conservative; fine.
        return;
    }
    assert!(
        rc_hops >= ra_hops - 1e-9,
        "RC mean reuse distance {rc_hops} must not be below RA's {ra_hops}"
    );
}

/// §VII-D: worst-case reliability ordering — RC stays close to NR while RA
/// degrades the most (averaged over flow sets; individual sets are noisy,
/// as the paper's own per-set numbers show).
#[test]
fn claim_worst_case_reliability_ordering() {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let cfg = ReliabilityConfig {
        flow_sets: 3,
        flow_count: 40,
        repetitions: 60,
        seed: 0xBEEF,
        ..ReliabilityConfig::default()
    };
    let results = reliability(&topo, &channels, &Algorithm::paper_suite(), &cfg);
    let mean_worst = |name: &str| {
        results
            .iter()
            .map(|s| s.algorithms.iter().find(|a| a.algorithm == name).unwrap().worst_pdr)
            .sum::<f64>()
            / results.len() as f64
    };
    let (nr, ra, rc) = (mean_worst("NR"), mean_worst("RA"), mean_worst("RC"));
    assert!(ra <= rc + 1e-9, "RA mean worst PDR ({ra}) must not beat RC ({rc})");
    assert!(nr - rc < 0.05, "RC ({rc}) must stay within 5% of NR ({nr})");
}

/// §VI / §VII-E: the classifier separates reuse-caused degradation from
/// external interference.
#[test]
fn claim_classifier_separates_causes() {
    let policy = DetectionPolicy::default();
    // reuse-degraded: clean contention-free, bad reuse
    let cf: Vec<f64> = (0..18).map(|i| 0.96 + 0.002 * (i % 4) as f64).collect();
    let reuse: Vec<f64> = (0..18).map(|i| 0.6 + 0.01 * (i % 5) as f64).collect();
    assert_eq!(policy.classify(&reuse, &cf), LinkVerdict::ReuseDegraded);
    // external: both degraded alike
    let both: Vec<f64> = (0..18).map(|i| 0.6 + 0.01 * (i % 5) as f64).collect();
    assert_eq!(policy.classify(&both.clone(), &both), LinkVerdict::ExternalCause);
    // healthy: reuse PRR above threshold
    let good: Vec<f64> = (0..18).map(|i| 0.93 + 0.003 * (i % 3) as f64).collect();
    assert_eq!(policy.classify(&good, &cf), LinkVerdict::Healthy);
}
