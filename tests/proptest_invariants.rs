//! Property-based tests over the core invariants: any schedule a scheduler
//! emits — for any random workload on any random network — passes the
//! independent validator, and the statistics substrate behaves like the
//! mathematics it implements.

use proptest::prelude::*;
use wsan::core::{validate, NetworkModel, Scheduler};
use wsan::expr::Algorithm;
use wsan::flow::{priority, Flow, FlowId, Period};
use wsan::net::{NodeId, ReuseGraph, Route};
use wsan::stats::ks::two_sample;
use wsan::stats::{BoxPlot, Ecdf, Histogram};

/// An (algorithm label, optimized engine, reference engine) triple for the
/// byte-identical-schedules equivalence suite.
type SchedulerPair = (&'static str, Box<dyn Scheduler>, Box<dyn Scheduler>);

/// A random connected reuse graph: a spanning chain plus random extra edges.
fn arb_reuse_graph(max_nodes: usize) -> impl Strategy<Value = ReuseGraph> {
    (4..max_nodes, proptest::collection::vec((0usize..64, 0usize..64), 0..24)).prop_map(
        |(n, extra)| {
            let mut edges: Vec<(NodeId, NodeId)> =
                (0..n - 1).map(|i| (NodeId::new(i), NodeId::new(i + 1))).collect();
            for (a, b) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    edges.push((NodeId::new(a), NodeId::new(b)));
                }
            }
            ReuseGraph::from_edges(n, &edges)
        },
    )
}

/// Random flows over a graph: single- or multi-hop walks along node indexes.
fn arb_flows(n_nodes: usize) -> impl Strategy<Value = Vec<Flow>> {
    proptest::collection::vec(
        (0usize..1000, 2usize..5, 1u32..4, proptest::num::f64::POSITIVE),
        1..8,
    )
    .prop_map(move |specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (start, len, period_scale, frac))| {
                let start = start % n_nodes;
                // a path along consecutive node ids, wrapping within range
                let nodes: Vec<NodeId> =
                    (0..len).map(|k| NodeId::new((start + k) % n_nodes)).collect();
                // ensure no immediate repeats after wrap (len < n_nodes here)
                let route = Route::new(nodes);
                let period = Period::from_slots(32 * period_scale).unwrap();
                let frac = frac.fract();
                let frac = if frac.is_finite() { frac } else { 0.5 };
                let deadline =
                    ((period.slots() / 2) as f64 + frac * (period.slots() / 2) as f64) as u32;
                let deadline = deadline.clamp(1, period.slots());
                Flow::new(FlowId::new(i), route, period, deadline).unwrap()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever any scheduler outputs validates against the §V-A
    /// constraints, for arbitrary workloads on arbitrary reuse graphs.
    #[test]
    fn every_emitted_schedule_validates(
        graph in arb_reuse_graph(16),
        flows_proto in arb_flows(8),
        channels in 1usize..4,
    ) {
        // flows were built for up to 8 nodes; graph has >= 4. Clamp node ids
        // by rebuilding flows only if they fit the graph.
        let n = graph.node_count();
        let flows: Vec<Flow> = flows_proto
            .into_iter()
            .filter(|f| f.segments().iter().all(|r| r.nodes().iter().all(|nd| nd.index() < n)))
            .collect();
        prop_assume!(!flows.is_empty());
        let set = priority::deadline_monotonic(flows, vec![]);
        let model = NetworkModel::from_reuse_graph(&graph, channels);
        for algo in [Algorithm::Nr, Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }, Algorithm::RcPerFlow { rho_t: 2 }] {
            if let Ok(schedule) = algo.build().schedule(&set, &model) {
                let rho_t = match algo { Algorithm::Nr => None, _ => Some(2) };
                if let Err(violations) = validate::check(&schedule, &set, &model, rho_t) {
                    return Err(TestCaseError::fail(format!("{algo}: {violations:?}")));
                }
            }
        }
    }

    /// RC never reuses more cells than RA on the same workload.
    #[test]
    fn rc_never_reuses_more_than_ra(
        graph in arb_reuse_graph(16),
        flows_proto in arb_flows(8),
    ) {
        let n = graph.node_count();
        let flows: Vec<Flow> = flows_proto
            .into_iter()
            .filter(|f| f.segments().iter().all(|r| r.nodes().iter().all(|nd| nd.index() < n)))
            .collect();
        prop_assume!(!flows.is_empty());
        let set = priority::deadline_monotonic(flows, vec![]);
        let model = NetworkModel::from_reuse_graph(&graph, 2);
        let shared = |s: &wsan::core::Schedule| {
            s.occupied_cells().filter(|(_, _, c)| c.len() > 1).count()
        };
        if let (Ok(ra), Ok(rc)) = (
            Algorithm::Ra { rho: 2 }.build().schedule(&set, &model),
            Algorithm::Rc { rho_t: 2 }.build().schedule(&set, &model),
        ) {
            // Not a strict theorem (greedy schedules diverge), but with the
            // shared workload RC reusing *more* would betray its design;
            // allow a tiny slack for divergence artifacts.
            prop_assert!(shared(&rc) <= shared(&ra) + 2,
                "RC shared {} cells, RA {}", shared(&rc), shared(&ra));
        }
    }

    /// ECDF is a valid CDF: monotone, 0 before min, 1 at max.
    #[test]
    fn ecdf_is_a_cdf(sample in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let e = Ecdf::new(&sample).unwrap();
        prop_assert_eq!(e.eval(e.min() - 1.0), 0.0);
        prop_assert_eq!(e.eval(e.max()), 1.0);
        let mut last = 0.0;
        for x in e.support() {
            let v = e.eval(*x);
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// K-S statistic is within [0,1], symmetric in its arguments, and zero
    /// for identical samples.
    #[test]
    fn ks_statistic_properties(
        a in proptest::collection::vec(0.0f64..1.0, 2..30),
        b in proptest::collection::vec(0.0f64..1.0, 2..30),
    ) {
        let r1 = two_sample(&a, &b).unwrap();
        let r2 = two_sample(&b, &a).unwrap();
        prop_assert!((0.0..=1.0).contains(&r1.statistic()));
        prop_assert!((r1.statistic() - r2.statistic()).abs() < 1e-12);
        prop_assert!((r1.p_value() - r2.p_value()).abs() < 1e-12);
        let same = two_sample(&a, &a).unwrap();
        prop_assert_eq!(same.statistic(), 0.0);
        prop_assert_eq!(same.p_value(), 1.0);
    }

    /// Box plots order their five numbers and bound them by the extremes.
    #[test]
    fn boxplot_numbers_are_ordered(sample in proptest::collection::vec(0.0f64..1.0, 1..60)) {
        let b = BoxPlot::of(&sample).unwrap();
        prop_assert!(b.min <= b.whisker_low + 1e-12);
        prop_assert!(b.whisker_low <= b.q1 + 1e-12);
        prop_assert!(b.q1 <= b.median + 1e-12);
        prop_assert!(b.median <= b.q3 + 1e-12);
        prop_assert!(b.q3 <= b.whisker_high + 1e-12);
        prop_assert!(b.whisker_high <= b.max + 1e-12);
    }

    /// Histogram totals and proportions are consistent.
    #[test]
    fn histogram_proportions_sum_to_one(cats in proptest::collection::vec(0usize..12, 1..100)) {
        let h: Histogram = cats.iter().copied().collect();
        prop_assert_eq!(h.total(), cats.len() as u64);
        let max = h.max_category().unwrap();
        let sum: f64 = (0..=max).map(|c| h.proportion(c)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let tail = h.proportions_with_tail(3);
        prop_assert!((tail.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The word-level hot path (PR 5) answers every primitive query
    /// bit-for-bit like the slot-by-slot `reference` module, on schedule
    /// states reached by a real scheduler over random topologies and loads.
    #[test]
    fn equivalence_hot_path_primitives_match_reference(
        graph in arb_reuse_graph(16),
        flows_proto in arb_flows(8),
        channels in 1usize..4,
        queries in proptest::collection::vec(
            (0usize..64, 0usize..64, 0u32..200, 0u32..400, 0u32..6), 1..24),
    ) {
        use wsan::core::laxity::LaxityCache;
        use wsan::core::{constraints, reference, Rho};
        use wsan::net::DirectedLink;

        let n = graph.node_count();
        let flows: Vec<Flow> = flows_proto
            .into_iter()
            .filter(|f| f.segments().iter().all(|r| r.nodes().iter().all(|nd| nd.index() < n)))
            .collect();
        prop_assume!(!flows.is_empty());
        let set = priority::deadline_monotonic(flows, vec![]);
        let model = NetworkModel::from_reuse_graph(&graph, channels);
        // RA leaves the densest occupancy patterns behind; an unschedulable
        // load still exercises the partially filled grid states before it.
        let Ok(schedule) = Algorithm::Ra { rho: 2 }.build().schedule(&set, &model) else {
            return Ok(());
        };
        let mut cache = LaxityCache::new();
        for (a, b, earliest, latest, rho_raw) in queries {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let link = DirectedLink::new(NodeId::new(a), NodeId::new(b));
            let rho = if rho_raw == 0 { Rho::NoReuse } else { Rho::AtLeast(rho_raw) };
            prop_assert_eq!(
                constraints::find_slot(&schedule, &model, link, earliest, latest, rho),
                reference::find_slot(&schedule, &model, link, earliest, latest, rho),
                "find_slot diverged: link {} window [{},{}] rho {:?}",
                link, earliest, latest, rho
            );
            let slot = earliest.min(schedule.horizon() - 1);
            prop_assert_eq!(
                constraints::best_offset(&schedule, &model, slot, link, rho),
                reference::best_offset(&schedule, &model, slot, link, rho)
            );
            for offset in 0..channels {
                prop_assert_eq!(
                    constraints::channel_ok(&schedule, &model, slot, offset, link, rho),
                    reference::channel_ok(&schedule, &model, slot, offset, link, rho)
                );
            }
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            let plain = schedule.conflict_slot_count(na, nb, earliest, latest);
            prop_assert_eq!(plain, reference::conflict_slot_count(&schedule, na, nb, earliest, latest));
            prop_assert_eq!(plain, cache.conflict_slot_count(&schedule, na, nb, earliest, latest));
            let remaining = [link];
            let lax = wsan::core::laxity::flow_laxity(&schedule, earliest, latest, &remaining);
            prop_assert_eq!(lax, reference::flow_laxity(&schedule, earliest, latest, &remaining));
            prop_assert_eq!(
                lax,
                wsan::core::laxity::flow_laxity_cached(
                    &schedule, &mut cache, earliest, latest, &remaining)
            );
        }
    }

    /// NR/RA/RC (and the RC variants) produce byte-identical schedules —
    /// same entries, same order — through the optimized and the reference
    /// engines, and agree on unschedulability.
    #[test]
    fn equivalence_schedulers_byte_identical_to_reference(
        graph in arb_reuse_graph(16),
        flows_proto in arb_flows(8),
        channels in 1usize..4,
    ) {
        use wsan::core::reference::{NoReuseRef, ReuseAggressivelyRef, ReuseConservativelyRef};
        use wsan::core::{ReuseTrigger, RhoReset};

        let n = graph.node_count();
        let flows: Vec<Flow> = flows_proto
            .into_iter()
            .filter(|f| f.segments().iter().all(|r| r.nodes().iter().all(|nd| nd.index() < n)))
            .collect();
        prop_assume!(!flows.is_empty());
        let set = priority::deadline_monotonic(flows, vec![]);
        let model = NetworkModel::from_reuse_graph(&graph, channels);
        let pairs: Vec<SchedulerPair> = vec![
            ("NR", Box::new(wsan::core::NoReuse::new()), Box::new(NoReuseRef::new())),
            ("RA", Box::new(wsan::core::ReuseAggressively::new(2)),
                Box::new(ReuseAggressivelyRef::new(2))),
            ("RC", Box::new(wsan::core::ReuseConservatively::new(2)),
                Box::new(ReuseConservativelyRef::new(2))),
            ("RC-perflow",
                Box::new(wsan::core::ReuseConservatively::new(2)
                    .with_reset(RhoReset::PerFlow)),
                Box::new(ReuseConservativelyRef::new(2).with_reset(RhoReset::PerFlow))),
            ("RC-lite",
                Box::new(wsan::core::ReuseConservatively::new(2)
                    .with_trigger(ReuseTrigger::DeadlineMissOnly)),
                Box::new(ReuseConservativelyRef::new(2)
                    .with_trigger(ReuseTrigger::DeadlineMissOnly))),
        ];
        for (name, optimized, reference) in pairs {
            match (optimized.schedule(&set, &model), reference.schedule(&set, &model)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a.entries(), b.entries(), "{} schedules diverged", name),
                (Err(_), Err(_)) => {}
                (a, b) => return Err(TestCaseError::fail(format!(
                    "{name}: optimized {:?} vs reference {:?}",
                    a.map(|s| s.entry_count()), b.map(|s| s.entry_count())
                ))),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The delay analysis is *sufficient*: any random workload it accepts
    /// must be schedulable by the greedy NR scheduler.
    #[test]
    fn analysis_acceptance_implies_nr_schedulability(
        graph in arb_reuse_graph(16),
        flows_proto in arb_flows(8),
        channels in 1usize..4,
    ) {
        let n = graph.node_count();
        let flows: Vec<Flow> = flows_proto
            .into_iter()
            .filter(|f| f.segments().iter().all(|r| r.nodes().iter().all(|nd| nd.index() < n)))
            .collect();
        prop_assume!(!flows.is_empty());
        let set = priority::deadline_monotonic(flows, vec![]);
        let model = NetworkModel::from_reuse_graph(&graph, channels);
        let report = wsan::core::analysis::analyse(&set, &model, 2);
        if report.schedulable() {
            prop_assert!(
                wsan::core::NoReuse::new().schedule(&set, &model).is_ok(),
                "analysis accepted a set NR cannot schedule"
            );
        }
    }

    /// Analysis response-time bounds dominate the response times NR
    /// actually achieves.
    #[test]
    fn analysis_bounds_dominate_measured_response_times(
        graph in arb_reuse_graph(16),
        flows_proto in arb_flows(8),
    ) {
        let n = graph.node_count();
        let flows: Vec<Flow> = flows_proto
            .into_iter()
            .filter(|f| f.segments().iter().all(|r| r.nodes().iter().all(|nd| nd.index() < n)))
            .collect();
        prop_assume!(!flows.is_empty());
        let set = priority::deadline_monotonic(flows, vec![]);
        let model = NetworkModel::from_reuse_graph(&graph, 2);
        let report = wsan::core::analysis::analyse(&set, &model, 2);
        if !report.schedulable() {
            return Ok(());
        }
        let Ok(schedule) = wsan::core::NoReuse::new().schedule(&set, &model) else {
            return Err(TestCaseError::fail("sufficiency violated"));
        };
        for (flow, job, measured) in wsan::core::metrics::response_times(&schedule, &set) {
            let bound = report.response_time(flow.index()).expect("schedulable");
            prop_assert!(
                measured <= bound,
                "flow {flow} job {job}: measured {measured} > bound {bound}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The capped hop table is *schedule-identical* to the dense matrix
    /// (DESIGN.md §16): `hops` stores `min(d, cap)` with unreachable pairs
    /// at the cap, `at_least` agrees exactly for every `ρ ≤ cap`, and for
    /// `ρ > cap` it only ever errs on the side of denying reuse.
    #[test]
    fn equivalence_capped_hops_conservative_for_every_rho(
        graph in arb_reuse_graph(24),
        cap in 1u32..12,
    ) {
        let dense = graph.hop_matrix();
        let capped = graph.capped_hops(cap, 1);
        let n = graph.node_count();
        for a in (0..n).map(NodeId::new) {
            for b in (0..n).map(NodeId::new) {
                let d = dense.hops(a, b);
                let want = if d == wsan::net::UNREACHABLE { cap } else { d.min(cap) };
                prop_assert_eq!(capped.hops(a, b), want);
                for rho in 0..=cap {
                    prop_assert_eq!(
                        capped.at_least(a, b, rho),
                        dense.at_least(a, b, rho),
                        "exactness broken at rho {} <= cap {}", rho, cap
                    );
                }
                for rho in cap + 1..cap + 4 {
                    prop_assert!(
                        !capped.at_least(a, b, rho),
                        "rho {} beyond cap {} must deny reuse", rho, cap
                    );
                }
            }
        }
    }

    /// The exact-mode build picks a cap large enough that every query the
    /// schedulers make (`ρ ≤ λ_R + 1`) matches the dense matrix, and its
    /// diameter is the true `λ_R`.
    #[test]
    fn equivalence_exact_hops_matches_dense(graph in arb_reuse_graph(24)) {
        let dense = graph.hop_matrix();
        let exact = graph.exact_hops(1);
        prop_assert!(!exact.saturated());
        prop_assert_eq!(exact.diameter(), dense.diameter());
        let n = graph.node_count();
        for a in (0..n).map(NodeId::new) {
            for b in (0..n).map(NodeId::new) {
                for rho in 0..=exact.cap() {
                    prop_assert_eq!(exact.at_least(a, b, rho), dense.at_least(a, b, rho));
                }
            }
        }
    }

    /// The parallel bit-parallel BFS build is byte-identical to the
    /// sequential one for any worker count, capped and exact modes alike.
    #[test]
    fn equivalence_parallel_capped_build_is_byte_identical(
        graph in arb_reuse_graph(24),
        cap in 1u32..12,
        jobs in 2usize..6,
    ) {
        prop_assert_eq!(graph.capped_hops(cap, 1), graph.capped_hops(cap, jobs));
        prop_assert_eq!(graph.exact_hops(1), graph.exact_hops(jobs));
    }

    /// Restricted extraction (the per-shard path) agrees with restricting
    /// the dense whole-graph matrix to the member rows/columns — member
    /// pair distances keep seeing paths through non-member nodes.
    #[test]
    fn equivalence_restricted_extraction_matches_dense(
        graph in arb_reuse_graph(24),
        picks in proptest::collection::vec(0usize..64, 1..10),
        cap in 1u32..12,
        jobs in 1usize..5,
    ) {
        let n = graph.node_count();
        let mut members: Vec<usize> = picks.into_iter().map(|p| p % n).collect();
        members.sort_unstable();
        members.dedup();
        let members: Vec<NodeId> = members.into_iter().map(NodeId::new).collect();
        let dense = graph.hop_matrix();
        let restricted = graph.capped_hops_restricted(&members, cap, jobs);
        prop_assert_eq!(restricted.node_count(), members.len());
        for (i, &a) in members.iter().enumerate() {
            for (j, &b) in members.iter().enumerate() {
                let d = dense.hops(a, b);
                let want = if d == wsan::net::UNREACHABLE { cap } else { d.min(cap) };
                prop_assert_eq!(
                    restricted.hops(NodeId::new(i), NodeId::new(j)),
                    want,
                    "member pair {:?}->{:?}", a, b
                );
            }
        }
    }
}
